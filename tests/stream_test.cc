// Tests for the retia::stream subsystem: validated ingestion with
// timestep bucketing and seal-once watermarks, entity-vocabulary growth,
// incremental fine-tuning with crash-safe RETIACKPT2 checkpoints (proved
// bit-exact under a real SIGKILL between fine-tune and publish), and
// zero-downtime snapshot hot-swap into the serving engine under
// concurrent queries. Registered under the ctest label `stream`
// (`ctest -L stream`, typically also in a -DRETIA_SANITIZE=thread build).

#include <signal.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/model_io.h"
#include "ckpt/result.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "stream/grow.h"
#include "stream/ingest.h"
#include "stream/online_trainer.h"
#include "stream/pipeline.h"
#include "tkg/dataset.h"
#include "tkg/synthetic.h"
#include "util/fail.h"

namespace retia {
namespace {

using stream::IngestStatus;
using stream::OnlineTrainerConfig;
using stream::SealedBucket;
using stream::StreamIngest;
using stream::StreamPipeline;
using stream::StreamPipelineConfig;
using stream::UnseenPolicy;
using tkg::Quadruple;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

tkg::SyntheticConfig TinyDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "stream-test";
  config.num_entities = 30;
  config.num_relations = 5;
  config.num_timestamps = 12;
  config.facts_per_timestamp = 12;
  config.num_schemas = 40;
  config.max_period = 4;
  config.seed = 17;
  return config;
}

core::RetiaConfig TinyModelConfig(const tkg::TkgDataset& dataset) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 12;
  config.history_len = 2;
  config.conv_kernels = 4;
  config.dropout = 0.0f;
  config.seed = 5;
  return config;
}

std::unique_ptr<tkg::TkgDataset> MakeLiveDataset() {
  return std::make_unique<tkg::TkgDataset>(
      tkg::GenerateSynthetic(TinyDataConfig()));
}

std::unique_ptr<core::RetiaModel> MakeModel(const tkg::TkgDataset& dataset) {
  return std::make_unique<core::RetiaModel>(TinyModelConfig(dataset));
}

std::string Params(const core::RetiaModel& model) {
  return ckpt::EncodeParams(model);
}

// A bucket of `copies` repetitions of one fact at timestamp `t` — the
// strongest possible fine-tune signal for its (s, r, ?) query.
std::vector<Quadruple> RepeatedFact(int64_t s, int64_t r, int64_t o,
                                    int64_t t, int64_t copies) {
  return std::vector<Quadruple>(static_cast<size_t>(copies),
                                Quadruple{s, r, o, t});
}

// Rank (0-based) of `o` in a full-depth TopK answer; -1 when absent.
int64_t RankOf(const serve::TopKResult& result, int64_t o) {
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    if (result.candidates[i].id == o) return static_cast<int64_t>(i);
  }
  return -1;
}

// ---- Ingestion --------------------------------------------------------------

TEST(StreamIngestTest, BucketsSealsAndRejectsLate) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t t0 = live->max_time();
  StreamIngest ingest(live.get());

  // Out-of-order arrivals within the open frontier are fine.
  EXPECT_EQ(ingest.Offer({1, 2, 3, t0 + 2}), IngestStatus::kAccepted);
  EXPECT_EQ(ingest.Offer({4, 1, 5, t0 + 1}), IngestStatus::kAccepted);
  EXPECT_EQ(ingest.Offer({2, 0, 6, t0 + 1}), IngestStatus::kAccepted);
  EXPECT_EQ(ingest.pending(), 3);
  EXPECT_EQ(ingest.frontier(), t0);

  // Sealing below t0+2 appends exactly the t0+1 bucket.
  std::vector<SealedBucket> sealed = ingest.SealBefore(t0 + 2);
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(sealed[0].time, t0 + 1);
  EXPECT_EQ(sealed[0].facts.size(), 2u);
  EXPECT_EQ(sealed[0].arrival_ns.size(), 2u);
  EXPECT_EQ(ingest.frontier(), t0 + 1);
  EXPECT_EQ(ingest.pending(), 1);
  EXPECT_EQ(live->max_time(), t0 + 1);
  EXPECT_EQ(live->FactsAt(t0 + 1).size(), 2u);

  // The sealed timestep is closed: arrivals there are late now.
  EXPECT_EQ(ingest.Offer({7, 2, 8, t0 + 1}), IngestStatus::kRejectedLate);
  // So is anything at or below the announced watermark minus one.
  EXPECT_EQ(ingest.Offer({7, 2, 8, t0}), IngestStatus::kRejectedLate);

  // Flush seals the rest.
  sealed = ingest.Flush();
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(sealed[0].time, t0 + 2);
  EXPECT_EQ(ingest.pending(), 0);
  EXPECT_EQ(live->max_time(), t0 + 2);

  EXPECT_EQ(ingest.counters().offered, 5);
  EXPECT_EQ(ingest.counters().accepted, 3);
  EXPECT_EQ(ingest.counters().rejected_late, 2);
  EXPECT_EQ(ingest.counters().sealed_buckets, 2);
  EXPECT_EQ(ingest.counters().sealed_facts, 3);
}

TEST(StreamIngestTest, RejectsInvalidAndUnseenIds) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t n = live->num_entities();
  const int64_t m = live->num_relations();
  const int64_t t = live->max_time() + 1;
  StreamIngest ingest(live.get());  // default policy: kReject

  EXPECT_EQ(ingest.Offer({-1, 0, 0, t}), IngestStatus::kRejectedInvalid);
  EXPECT_EQ(ingest.Offer({0, 0, 0, -3}), IngestStatus::kRejectedInvalid);
  EXPECT_EQ(ingest.Offer({0, m, 0, t}), IngestStatus::kRejectedUnseenRelation);
  EXPECT_EQ(ingest.Offer({n, 0, 0, t}), IngestStatus::kRejectedUnseenEntity);
  EXPECT_EQ(ingest.Offer({0, 0, n, t}), IngestStatus::kRejectedUnseenEntity);
  EXPECT_EQ(live->num_entities(), n);  // kReject never grows

  EXPECT_EQ(ingest.counters().rejected_invalid, 2);
  EXPECT_EQ(ingest.counters().rejected_unseen_relation, 1);
  EXPECT_EQ(ingest.counters().rejected_unseen_entity, 2);
  EXPECT_EQ(ingest.counters().accepted, 0);
}

TEST(StreamIngestTest, GrowEntitiesPolicyGrowsVocabUpToCap) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t n = live->num_entities();
  const int64_t t = live->max_time() + 1;
  stream::IngestConfig config;
  config.unseen_policy = UnseenPolicy::kGrowEntities;
  config.max_entities = n + 4;
  StreamIngest ingest(live.get(), config);

  EXPECT_EQ(ingest.Offer({n + 2, 0, 1, t}), IngestStatus::kAccepted);
  EXPECT_EQ(live->num_entities(), n + 3);
  EXPECT_EQ(ingest.counters().grown_entities, 3);

  // Relations never grow, regardless of policy.
  EXPECT_EQ(ingest.Offer({0, live->num_relations(), 0, t}),
            IngestStatus::kRejectedUnseenRelation);

  // The growth cap holds.
  EXPECT_EQ(ingest.Offer({n + 10, 0, 1, t}),
            IngestStatus::kRejectedUnseenEntity);
  EXPECT_EQ(live->num_entities(), n + 3);
}

// ---- Dataset append / graph-cache visibility --------------------------------

TEST(StreamDatasetTest, AppendedBucketIsVisibleToHistoryWithoutRebuild) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  graph::GraphCache cache(live.get());
  const int64_t t0 = live->max_time();

  const std::vector<int64_t> before = cache.HistoryBefore(t0 + 2, 3);
  ASSERT_FALSE(before.empty());
  EXPECT_LE(before.back(), t0);

  live->AppendBucket(t0 + 1, {{1, 2, 3, t0 + 1}});
  const std::vector<int64_t> after = cache.HistoryBefore(t0 + 2, 3);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after.back(), t0 + 1);  // the same cache sees the new frontier
  // One fact builds two edges (the inverse-augmented pair).
  EXPECT_EQ(cache.subgraph(t0 + 1).num_edges(), 2);
}

// ---- Model growth / cloning -------------------------------------------------

TEST(StreamGrowTest, CloneIsBitExact) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
  std::unique_ptr<core::RetiaModel> clone = stream::CloneModel(*model);
  EXPECT_EQ(Params(*model), Params(*clone));
  EXPECT_FALSE(clone->training());
}

TEST(StreamGrowTest, GrowCopiesOldRowsBitExactAndKeepsFreshTail) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
  const int64_t old_n = model->config().num_entities;
  const int64_t new_n = old_n + 4;
  std::unique_ptr<core::RetiaModel> grown =
      stream::GrowEntityVocab(*model, new_n);
  EXPECT_EQ(grown->config().num_entities, new_n);

  std::map<std::string, tensor::Tensor> old_params;
  for (auto& [name, t] : model->NamedParameters()) old_params.emplace(name, t);
  int64_t checked = 0;
  for (auto& [name, grown_t] : grown->NamedParameters()) {
    ASSERT_TRUE(old_params.count(name)) << name;
    const tensor::Tensor& old_t = old_params.at(name);
    const std::vector<float>& old_data = old_t.impl().data;
    const std::vector<float>& new_data = grown_t.impl().data;
    if (name == "entity_init.table") {
      ASSERT_EQ(grown_t.Dim(0), new_n);
      // Old rows carry over bit-exactly; the tail rows are a fresh Xavier
      // init (not all-zero).
      ASSERT_TRUE(std::equal(old_data.begin(), old_data.end(),
                             new_data.begin()));
      const auto tail_begin = new_data.begin() + old_data.size();
      EXPECT_TRUE(std::any_of(tail_begin, new_data.end(),
                              [](float v) { return v != 0.0f; }));
    } else {
      ASSERT_EQ(old_data.size(), new_data.size()) << name;
      EXPECT_EQ(old_data, new_data) << name;
    }
    ++checked;
  }
  EXPECT_EQ(checked, static_cast<int64_t>(old_params.size()));
}

TEST(StreamGrowTest, OnlineTrainerSyncsVocabAfterIngestGrowth) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
  const int64_t n = live->num_entities();
  const int64_t t = live->max_time() + 1;
  stream::OnlineTrainer trainer(std::move(model), live.get(),
                                {.steps_per_time = 1, .lr = 0.01f});
  stream::IngestConfig config;
  config.unseen_policy = UnseenPolicy::kGrowEntities;
  StreamIngest ingest(live.get(), config);

  EXPECT_FALSE(trainer.SyncVocab());  // nothing grew yet
  ASSERT_EQ(ingest.Offer({n + 1, 0, 2, t}), IngestStatus::kAccepted);
  ingest.SealBefore(t + 1);
  EXPECT_TRUE(trainer.SyncVocab());
  EXPECT_EQ(trainer.model().config().num_entities, n + 2);
  EXPECT_GT(trainer.FineTuneThrough(t), 0);
  EXPECT_EQ(trainer.last_trained_time(), t);
}

// ---- Pipeline: the acceptance criterion -------------------------------------

// A newly ingested fact must measurably change the top-k answer for its
// (s, r, t) query after one fine-tune window.
TEST(StreamPipelineTest, IngestedFactChangesTopKAfterOneWindow) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t n = live->num_entities();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
  const int64_t t_new = live->max_time() + 1;
  const int64_t t_query = t_new + 1;
  const int64_t s = 3, r = 2, o = 17;

  StreamPipelineConfig config;
  config.window = 1;
  config.trainer.steps_per_time = 8;
  config.trainer.lr = 0.1f;
  config.serve.max_k = n;  // full-depth ranking so we can find o's rank
  StreamPipeline pipeline(std::move(model), std::move(live), config);

  const serve::TopKResult before = pipeline.engine().TopK(s, r, t_query, n);
  const int64_t rank_before = RankOf(before, o);
  ASSERT_GE(rank_before, 0);

  pipeline.OfferBatch(RepeatedFact(s, r, o, t_new, 25));
  EXPECT_EQ(pipeline.AdvanceTo(t_query), 1);  // one window published

  const serve::TopKResult after = pipeline.engine().TopK(s, r, t_query, n);
  const int64_t rank_after = RankOf(after, o);
  ASSERT_GE(rank_after, 0);
  EXPECT_LT(rank_after, rank_before)
      << "fine-tuning on the ingested fact must improve its object's rank";
  EXPECT_EQ(rank_after, 0)
      << "25 repetitions x 8 steps should put the object on top";
  EXPECT_NE(before.candidates, after.candidates);

  const stream::StreamStatus status = pipeline.Status();
  EXPECT_EQ(status.publishes, 1);
  EXPECT_EQ(status.frontier, t_new);
  EXPECT_EQ(status.last_trained_time, t_new);
  EXPECT_GT(status.updates, 0);
  EXPECT_EQ(pipeline.engine().snapshot_swaps(), 1);
  EXPECT_EQ(pipeline.staleness_us().size(), 25u);
  for (int64_t us : pipeline.staleness_us()) EXPECT_GE(us, 0);
}

// ---- Checkpoint / resume ----------------------------------------------------

std::vector<Quadruple> WindowBucket(int64_t t, uint64_t salt) {
  // A deterministic mixed bucket at timestamp t.
  std::vector<Quadruple> facts;
  for (int64_t i = 0; i < 6; ++i) {
    const int64_t s = (3 * i + static_cast<int64_t>(salt)) % 30;
    facts.push_back({s, (i + 1) % 5, (s + 7 + i) % 30, t});
  }
  return facts;
}

TEST(StreamResumeTest, ResumeAfterFirstWindowMatchesUninterruptedBitExact) {
  const std::string ckpt_a = TempPath("stream_resume_interrupted.ckpt");
  const std::string ckpt_c = TempPath("stream_resume_reference.ckpt");
  auto make_config = [](const std::string& path) {
    StreamPipelineConfig config;
    config.window = 1;
    config.trainer.steps_per_time = 2;
    config.trainer.lr = 0.01f;
    config.trainer.checkpoint_path = path;
    return config;
  };

  int64_t t1 = 0, t2 = 0;

  // Reference run C: both windows, uninterrupted.
  std::string final_params, final_ckpt_params;
  int64_t final_updates = 0;
  {
    std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
    t1 = live->max_time() + 1;
    t2 = t1 + 1;
    std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
    StreamPipeline c(std::move(model), std::move(live), make_config(ckpt_c));
    c.OfferBatch(WindowBucket(t1, 1));
    ASSERT_EQ(c.AdvanceTo(t2), 1);
    c.OfferBatch(WindowBucket(t2, 2));
    ASSERT_EQ(c.AdvanceTo(t2 + 1), 1);
    final_params = Params(c.trainer().model());
    final_updates = c.Status().updates;
  }

  // Interrupted run A: first window only, then the process "dies" (the
  // pipeline is simply destroyed; the checkpoint is what survives).
  {
    std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
    std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
    StreamPipeline a(std::move(model), std::move(live), make_config(ckpt_a));
    a.OfferBatch(WindowBucket(t1, 1));
    ASSERT_EQ(a.AdvanceTo(t2), 1);
  }

  // Resumed run B: fresh base state, restore, replay window 1 (appended
  // for history, not re-trained), stream window 2.
  {
    std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
    std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
    StreamPipeline b(std::move(model), std::move(live), make_config(ckpt_a));
    const ckpt::Result resumed = b.Resume();
    ASSERT_TRUE(resumed.ok()) << resumed.ToString();
    EXPECT_EQ(b.trainer().last_trained_time(), t1);

    b.OfferBatch(WindowBucket(t1, 1));  // replayed: history only
    const int64_t updates_before_replay = b.Status().updates;
    ASSERT_EQ(b.AdvanceTo(t2), 1);
    EXPECT_EQ(b.Status().updates, updates_before_replay)
        << "already-trained timesteps must not be re-trained on replay";

    b.OfferBatch(WindowBucket(t2, 2));
    ASSERT_EQ(b.AdvanceTo(t2 + 1), 1);
    EXPECT_EQ(Params(b.trainer().model()), final_params)
        << "resumed run diverged from the uninterrupted one";
    EXPECT_EQ(b.Status().updates, final_updates);
  }
}

// The ISSUE's crash drill: SIGKILL lands between a window's fine-tune
// checkpoint and its publish. The checkpoint must resume bit-exact and
// the on-disk serve snapshot must be old-or-new, never torn.
TEST(StreamResumeTest, SigkillBetweenFinetuneAndPublishResumesBitExact) {
  // Re-exec the death-test child instead of fork()ing it: the crashy
  // pipeline trains, so under RETIA_NUM_THREADS>1 a fork()ed child would
  // inherit the parent's pool state without its worker threads (and under
  // TSan, fork of a multithreaded process wedges on runtime locks).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string crash_ckpt = TempPath("stream_crash.ckpt");
  const std::string crash_snap = TempPath("stream_crash_snap");
  const std::string ref_ckpt = TempPath("stream_crash_ref.ckpt");
  const std::string ref_snap = TempPath("stream_crash_ref_snap");
  auto make_config = [](const std::string& ckpt_path,
                        const std::string& snap_prefix) {
    StreamPipelineConfig config;
    config.window = 1;
    config.trainer.steps_per_time = 2;
    config.trainer.lr = 0.01f;
    config.trainer.checkpoint_path = ckpt_path;
    config.snapshot_prefix = snap_prefix;
    return config;
  };

  int64_t t1 = 0, t2 = 0;
  {
    std::unique_ptr<tkg::TkgDataset> probe = MakeLiveDataset();
    t1 = probe->max_time() + 1;
    t2 = t1 + 1;
  }

  // Reference run: both windows uninterrupted, capturing the published
  // parameters after each window.
  std::string params_w1, params_w2;
  {
    std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
    std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
    StreamPipeline ref(std::move(model), std::move(live),
                       make_config(ref_ckpt, ref_snap));
    ref.OfferBatch(WindowBucket(t1, 1));
    ASSERT_EQ(ref.AdvanceTo(t2), 1);
    params_w1 = Params(ref.trainer().model());
    ref.OfferBatch(WindowBucket(t2, 2));
    ASSERT_EQ(ref.AdvanceTo(t2 + 1), 1);
    params_w2 = Params(ref.trainer().model());
  }
  ASSERT_NE(params_w1, params_w2);

  // Crash run. Renames alternate checkpoint, snapshot per window:
  //   window 1: rename 1 = checkpoint(t1), rename 2 = snapshot(t1)
  //   window 2: rename 3 = checkpoint(t2), then SIGKILL — snapshot(t2)
  //   never happens.
  EXPECT_EXIT(
      {
        fail::InstallPlan({.crash_after_rename_n = 3});
        std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
        std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
        StreamPipeline victim(std::move(model), std::move(live),
                              make_config(crash_ckpt, crash_snap));
        victim.OfferBatch(WindowBucket(t1, 1));
        victim.AdvanceTo(t2);
        victim.OfferBatch(WindowBucket(t2, 2));
        victim.AdvanceTo(t2 + 1);  // SIGKILL right after the t2 checkpoint
      },
      ::testing::KilledBySignal(SIGKILL), "");

  // Old-or-new, never torn: the serve snapshot on disk is exactly the
  // window-1 publish the crash left behind.
  {
    std::unique_ptr<core::RetiaModel> disk;
    const ckpt::Result loaded = serve::LoadModelSnapshot(crash_snap, &disk);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    EXPECT_EQ(Params(*disk), params_w1);
  }

  // Resume from the crash checkpoint: bit-exact window-2 state, and the
  // republish brings the disk snapshot forward to it.
  {
    std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
    std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
    StreamPipeline resumed(std::move(model), std::move(live),
                           make_config(crash_ckpt, crash_snap));
    const ckpt::Result r = resumed.Resume();
    ASSERT_TRUE(r.ok()) << r.ToString();
    EXPECT_EQ(resumed.trainer().last_trained_time(), t2);
    EXPECT_EQ(Params(resumed.trainer().model()), params_w2)
        << "resume after SIGKILL diverged from the uninterrupted run";

    std::unique_ptr<core::RetiaModel> disk;
    const ckpt::Result loaded = serve::LoadModelSnapshot(crash_snap, &disk);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    EXPECT_EQ(Params(*disk), params_w2);
  }
}

// ---- Hot swap under concurrent queries --------------------------------------

serve::EngineSnapshot SnapshotOf(const core::RetiaModel& model,
                                 const tkg::TkgDataset& dataset) {
  serve::EngineSnapshot snapshot;
  snapshot.model = stream::CloneModel(model);
  snapshot.dataset = std::make_unique<tkg::TkgDataset>(dataset);
  snapshot.graph_cache =
      std::make_unique<graph::GraphCache>(snapshot.dataset.get());
  return snapshot;
}

TEST(SnapshotSwapTest, ConcurrentQueriesAcrossSwapsAreNeverDroppedOrTorn) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  core::RetiaConfig config_a = TinyModelConfig(*live);
  core::RetiaConfig config_b = config_a;
  config_b.seed = 99;  // a genuinely different model
  core::RetiaModel model_a(config_a);
  core::RetiaModel model_b(config_b);
  const int64_t t = live->max_time();
  const int64_t k = 5;
  // Queries span several serving timestamps, so swaps land while the
  // engine's per-timestamp state entries are being created and evolved
  // concurrently (the once-semantics path in FrozenStateStore): distinct
  // timestamps evolve in parallel, same-timestamp batches share one
  // evolution, and a pinned batch must still answer old-or-new.
  const std::vector<int64_t> times = {t - 1, t, t + 1};

  serve::ServeConfig serve_config;
  serve_config.num_threads = 4;
  serve_config.max_k = k;

  // Per-(timestamp, query) reference answers under each snapshot, from
  // dedicated single-snapshot engines (the determinism contract makes
  // these the unique correct answers).
  std::vector<std::pair<int64_t, int64_t>> queries;
  for (int64_t s = 0; s < live->num_entities(); ++s) {
    queries.emplace_back(s, s % (2 * live->num_relations()));
  }
  std::vector<std::vector<serve::TopKResult>> ref_a(times.size()),
      ref_b(times.size());
  {
    serve::ServeEngine engine_a(SnapshotOf(model_a, *live), serve_config);
    serve::ServeEngine engine_b(SnapshotOf(model_b, *live), serve_config);
    for (size_t ti = 0; ti < times.size(); ++ti) {
      for (const auto& [s, r] : queries) {
        ref_a[ti].push_back(engine_a.TopK(s, r, times[ti], k));
        ref_b[ti].push_back(engine_b.TopK(s, r, times[ti], k));
      }
    }
    ASSERT_NE(ref_a[0].front().candidates, ref_b[0].front().candidates);
  }

  serve::ServeEngine engine(SnapshotOf(model_a, *live), serve_config);
  constexpr int kClients = 4;
  constexpr int kRoundsPerClient = 60;
  std::vector<std::thread> clients;
  std::vector<int64_t> answered(kClients, 0);
  std::vector<int64_t> torn(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        const size_t qi = (static_cast<size_t>(c) * 31 + round) % queries.size();
        const size_t ti = (static_cast<size_t>(c) + round) % times.size();
        const auto& [s, r] = queries[qi];
        const serve::TopKResult result = engine.TopK(s, r, times[ti], k);
        if (result.candidates.size() == static_cast<size_t>(k)) ++answered[c];
        const bool is_a = result.candidates == ref_a[ti][qi].candidates;
        const bool is_b = result.candidates == ref_b[ti][qi].candidates;
        if (!is_a && !is_b) ++torn[c];
      }
    });
  }

  // Swap back and forth while the clients hammer the engine.
  constexpr int kSwaps = 10;
  for (int swap = 0; swap < kSwaps; ++swap) {
    engine.SwapSnapshot(swap % 2 == 0 ? SnapshotOf(model_b, *live)
                                      : SnapshotOf(model_a, *live));
  }
  for (std::thread& thread : clients) thread.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(answered[c], kRoundsPerClient) << "client " << c
                                             << " dropped requests";
    EXPECT_EQ(torn[c], 0) << "client " << c << " saw a torn snapshot";
  }
  EXPECT_EQ(engine.snapshot_swaps(), kSwaps);
  const std::string json = engine.Stats().ToJson();
  EXPECT_NE(json.find("\"snapshot_swaps\":" + std::to_string(kSwaps)),
            std::string::npos)
      << json;
}

// Swapping in a grown-vocabulary snapshot mid-flight: queries about old
// entities keep working, and the new entity becomes answerable.
TEST(SnapshotSwapTest, SwapToGrownVocabularyServesNewEntity) {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t n = live->num_entities();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);
  serve::ServeConfig serve_config;
  serve_config.max_k = 5;
  serve::ServeEngine engine(SnapshotOf(*model, *live), serve_config);
  const int64_t t = live->max_time();
  ASSERT_EQ(engine.TopK(0, 0, t, 5).candidates.size(), 5u);

  // Grow the world by one entity and publish it.
  live->GrowVocab(n + 1, live->num_relations());
  live->AppendBucket(t + 1, {{n, 0, 1, t + 1}});
  std::unique_ptr<core::RetiaModel> grown =
      stream::GrowEntityVocab(*model, n + 1);
  engine.SwapSnapshot(SnapshotOf(*grown, *live));

  const serve::TopKResult for_new = engine.TopK(n, 0, t + 2, 5);
  EXPECT_EQ(for_new.candidates.size(), 5u);
  const serve::TopKResult for_old = engine.TopK(0, 0, t + 2, 5);
  EXPECT_EQ(for_old.candidates.size(), 5u);
}

}  // namespace
}  // namespace retia
