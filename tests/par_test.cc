// Thread-count-invariance suite for retia::par.
//
// The determinism contract (par/parallel_for.h) says every parallel kernel
// produces bit-identical results for every pool size, because shard
// boundaries are a function of the problem size alone and shard bodies
// either write disjoint outputs or combine in shard order on the caller.
// These tests enforce the contract end to end: a full RETIA forward +
// backward over a small ICEWS14-like graph must produce byte-identical
// parameters and gradients at 1, 2, 8, and hardware_concurrency threads.

#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/retia.h"
#include "grad_check.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"
#include "par/parallel_for.h"
#include "par/task_graph.h"
#include "par/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tkg/synthetic.h"

namespace retia::par {
namespace {

// ---------------------------------------------------------------------------
// ParseThreadCount.

TEST(ParseThreadCountTest, AcceptsPositiveIntegers) {
  EXPECT_EQ(ParseThreadCount("1", 7), 1);
  EXPECT_EQ(ParseThreadCount("8", 7), 8);
  EXPECT_EQ(ParseThreadCount("4096", 7), 4096);
}

TEST(ParseThreadCountTest, FallsBackOnBadInput) {
  EXPECT_EQ(ParseThreadCount(nullptr, 7), 7);
  EXPECT_EQ(ParseThreadCount("", 7), 7);
  EXPECT_EQ(ParseThreadCount("abc", 7), 7);
  EXPECT_EQ(ParseThreadCount("4x", 7), 7);
  EXPECT_EQ(ParseThreadCount("0", 7), 7);
  EXPECT_EQ(ParseThreadCount("-3", 7), 7);
  EXPECT_EQ(ParseThreadCount("5000", 7), 7);  // above the sanity cap
}

// ---------------------------------------------------------------------------
// Shard geometry: pure functions of the problem size.

TEST(ShardGeometryTest, NumShardsIndependentOfThreadCount) {
  EXPECT_EQ(NumShards(0, 100), 1);
  EXPECT_EQ(NumShards(1, 100), 1);
  EXPECT_EQ(NumShards(100, 100), 1);
  EXPECT_EQ(NumShards(101, 100), 2);
  EXPECT_EQ(NumShards(1 << 30, 1), kMaxShards);
}

TEST(ShardGeometryTest, ShardRangesTileTheInterval) {
  for (int64_t n : {1, 5, 63, 64, 65, 1000}) {
    for (int64_t shards : {1, 2, 7, 64}) {
      int64_t expected_begin = 0;
      for (int64_t s = 0; s < shards; ++s) {
        const Range r = ShardRange(n, shards, s);
        EXPECT_EQ(r.begin, expected_begin);
        EXPECT_LE(r.begin, r.end);
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

// ---------------------------------------------------------------------------
// ThreadPool properties.

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelRun(0, [&](int64_t) { ++calls; });
  ParallelFor(0, 1, [&](int64_t, int64_t) { ++calls; }, &pool);
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, FewerItemsThanThreadsCoversEveryItemOnce) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  ParallelFor(
      3, 1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) ++hits[i];
      },
      &pool);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryShardRunsExactlyOnce) {
  ThreadPool pool(4);
  const int64_t kShards = 57;
  std::vector<int> counts(kShards, 0);
  // Disjoint writes per shard: no synchronisation needed by contract.
  pool.ParallelRun(kShards, [&](int64_t shard) { ++counts[shard]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, ExceptionInsideShardPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelRun(16,
                       [](int64_t shard) {
                         if (shard == 11) throw std::runtime_error("shard 11");
                       }),
      std::runtime_error);
  // The pool survives a throwing job and keeps serving work.
  int ok = 0;
  pool.ParallelRun(4, [&](int64_t) {
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    ++ok;
  });
  EXPECT_EQ(ok, 4);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::vector<int> inner_order;
  std::mutex mu;
  pool.ParallelRun(4, [&](int64_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // Nested: must fall back to serial, in shard order, on this thread.
    std::vector<int> local;
    ParallelFor(
        4, 1,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i)
            local.push_back(static_cast<int>(i));
        },
        &pool);
    std::lock_guard<std::mutex> lock(mu);
    for (int v : local) inner_order.push_back(v);
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  // Each of the 4 outer shards appended 0,1,2,3 in order.
  ASSERT_EQ(inner_order.size(), 16u);
  for (size_t i = 0; i < inner_order.size(); i += 4) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(inner_order[i + static_cast<size_t>(j)], j);
    }
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelRun(8, [&](int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  bool ran = false;
  pool.Submit([&] { ran = true; });  // inline with no workers
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, ScopedDefaultPoolOverridesAndRestores) {
  ThreadPool* original = DefaultPool();
  {
    ThreadPool pool(2);
    ScopedDefaultPool guard(&pool);
    EXPECT_EQ(DefaultPool(), &pool);
  }
  EXPECT_EQ(DefaultPool(), original);
}

// ---------------------------------------------------------------------------
// DeterministicReduce: identical result for every pool size.

TEST(DeterministicReduceTest, BitIdenticalAcrossThreadCounts) {
  const int64_t n = 100000;
  std::vector<float> values(n);
  // Values spanning magnitudes so FP association would actually matter.
  uint64_t state = 12345;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const float mag = static_cast<float>((state >> 33) % 1000000) / 997.0f;
    values[i] = (state & 1) ? mag : -mag;
  }
  auto reduce_with = [&](int threads) {
    ThreadPool pool(threads);
    return DeterministicReduce<double>(
        n, 1024, 0.0,
        [&](int64_t begin, int64_t end) {
          double partial = 0.0;
          for (int64_t i = begin; i < end; ++i)
            partial += static_cast<double>(values[i]);
          return partial;
        },
        [](double acc, double partial) { return acc + partial; }, &pool);
  };
  const double reference = reduce_with(1);
  for (int threads : {2, 3, 8, DefaultThreads()}) {
    const double got = reduce_with(threads);
    EXPECT_EQ(std::memcmp(&got, &reference, sizeof(double)), 0)
        << "threads=" << threads << " got " << got << " want " << reference;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: full RETIA forward + backward over a small ICEWS14-like
// graph is byte-identical at every thread count — parameters after an
// optimizer step AND every gradient, compared with memcmp (exact float
// equality, no tolerance).

tkg::SyntheticConfig SmallIcews14Config() {
  tkg::SyntheticConfig c = tkg::SyntheticConfig::Icews14Like();
  c.num_entities = 80;
  c.num_timestamps = 12;
  c.facts_per_timestamp = 30;
  c.num_schemas = 120;
  return c;
}

struct RunResult {
  std::vector<std::vector<float>> grads;
  std::vector<std::vector<float>> params;
  float loss = 0.0f;
};

// One deterministic train step (evolve, loss, backward, clip, Adam) with
// the process-wide default pool swapped to `threads` threads.
RunResult RunTrainStep(const tkg::TkgDataset& ds, int threads) {
  ThreadPool pool(threads);
  ScopedDefaultPool guard(&pool);
  core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 16;
  config.history_len = 3;
  config.conv_kernels = 4;
  config.num_bases = 2;
  core::RetiaModel model(config);
  model.SetTraining(false);  // keep RNG-free; gradients still flow
  graph::GraphCache cache(&ds);
  auto states = model.Evolve(cache, cache.HistoryBefore(8, config.history_len));
  auto loss = model.ComputeLoss(states, ds.FactsAt(8));
  loss.joint.Backward();
  std::vector<tensor::Tensor> params = model.Parameters();
  nn::ClipGradNorm(params, 1.0f);
  RunResult result;
  result.loss = loss.joint.Item();
  for (const tensor::Tensor& p : params) {
    result.grads.push_back(p.impl().grad);
  }
  nn::Adam opt(params, nn::Adam::Options{.lr = 1e-2f});
  opt.Step();
  for (const tensor::Tensor& p : params) {
    result.params.push_back(p.impl().data);
  }
  return result;
}

void ExpectBitIdentical(const std::vector<std::vector<float>>& got,
                        const std::vector<std::vector<float>>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << what << " tensor " << i;
    if (got[i].empty()) continue;
    EXPECT_EQ(std::memcmp(got[i].data(), want[i].data(),
                          got[i].size() * sizeof(float)),
              0)
        << what << " tensor " << i << " differs";
  }
}

TEST(ThreadInvarianceTest, RetiaForwardBackwardBitIdentical) {
  const tkg::TkgDataset ds = tkg::GenerateSynthetic(SmallIcews14Config());
  const RunResult reference = RunTrainStep(ds, 1);
  EXPECT_TRUE(std::isfinite(reference.loss));
  for (int threads : {2, 8, DefaultThreads()}) {
    const RunResult run = RunTrainStep(ds, threads);
    EXPECT_EQ(std::memcmp(&run.loss, &reference.loss, sizeof(float)), 0)
        << "loss differs at threads=" << threads;
    ExpectBitIdentical(run.grads, reference.grads,
                       "grads at threads=" + std::to_string(threads));
    ExpectBitIdentical(run.params, reference.params,
                       "params at threads=" + std::to_string(threads));
  }
}

// The same invariance for the raw hot kernels, exercised with shapes big
// enough to split into many shards.
TEST(ThreadInvarianceTest, GemmAndSoftmaxKernelsBitIdentical) {
  tensor::Tensor a = testing::TestTensor({129, 67}, 21);
  tensor::Tensor b = testing::TestTensor({53, 67}, 22);
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < 129; ++i) targets.push_back(i % 53);

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    tensor::Tensor logits = tensor::MatMulTransposeB(a, b);
    tensor::Tensor loss = tensor::CrossEntropyLogits(logits, targets);
    a.ZeroGrad();
    b.ZeroGrad();
    loss.Backward();
    RunResult r;
    r.loss = loss.Item();
    r.params.push_back(logits.impl().data);
    r.grads.push_back(a.impl().grad);
    r.grads.push_back(b.impl().grad);
    return r;
  };
  const RunResult reference = run(1);
  for (int threads : {2, 8, DefaultThreads()}) {
    const RunResult got = run(threads);
    EXPECT_EQ(std::memcmp(&got.loss, &reference.loss, sizeof(float)), 0);
    ExpectBitIdentical(got.params, reference.params, "logits");
    ExpectBitIdentical(got.grads, reference.grads, "gemm-ce grads");
  }
}

// ---------------------------------------------------------------------------
// Inter-op invariance: Evolve schedules its history encoding as a
// par::TaskGraph (prep tasks overlapping the recurrent chain; DESIGN.md
// §12). The full forward + backward must be memcmp-identical for every
// inter-op width — including width 1, the serial FIFO path that is the
// semantics of RETIA_INTEROP_THREADS=1 — across pool sizes.

TEST(ThreadInvarianceTest, InterOpPipelineBitIdenticalAcrossWidths) {
  const tkg::TkgDataset ds = tkg::GenerateSynthetic(SmallIcews14Config());
  auto run = [&](int pool_threads, int interop) {
    ScopedInteropThreads interop_guard(interop);
    return RunTrainStep(ds, pool_threads);
  };
  // Fully serial reference: one pool thread AND inter-op width 1.
  const RunResult reference = run(1, 1);
  EXPECT_TRUE(std::isfinite(reference.loss));
  const std::pair<int, int> sweep[] = {
      {4, 1},  // parallel kernels, serial inter-op (the ..._THREADS=1 path)
      {2, 2},          {4, 8},
      {8, DefaultThreads()},
      {1, 8},  // wide inter-op cap on a workerless pool: still serial
  };
  for (const auto& [pool_threads, interop] : sweep) {
    const RunResult got = run(pool_threads, interop);
    const std::string what = "pool=" + std::to_string(pool_threads) +
                             " interop=" + std::to_string(interop);
    EXPECT_EQ(std::memcmp(&got.loss, &reference.loss, sizeof(float)), 0)
        << "loss differs at " << what;
    ExpectBitIdentical(got.grads, reference.grads, "grads at " + what);
    ExpectBitIdentical(got.params, reference.params, "params at " + what);
  }
}

// Training mode consumes the model RNG (dropout) inside the evolve chain;
// the chain's dependency edges must preserve the exact serial RNG call
// order, so evolved embeddings stay bit-identical at every inter-op width.
TEST(ThreadInvarianceTest, TrainingModeEvolveRngOrderInvariant) {
  const tkg::TkgDataset ds = tkg::GenerateSynthetic(SmallIcews14Config());
  auto run = [&](int pool_threads, int interop) {
    ThreadPool pool(pool_threads);
    ScopedDefaultPool pool_guard(&pool);
    ScopedInteropThreads interop_guard(interop);
    core::RetiaConfig config;
    config.num_entities = ds.num_entities();
    config.num_relations = ds.num_relations();
    config.dim = 16;
    config.history_len = 3;
    config.conv_kernels = 4;
    core::RetiaModel model(config);
    model.SetTraining(true);  // dropout draws from the model RNG
    graph::GraphCache cache(&ds);
    tensor::NoGradGuard guard;
    auto states =
        model.Evolve(cache, cache.HistoryBefore(8, config.history_len));
    std::vector<std::vector<float>> out;
    for (const auto& s : states) {
      out.push_back(s.entities.impl().data);
      out.push_back(s.relations.impl().data);
    }
    return out;
  };
  const std::vector<std::vector<float>> reference = run(1, 1);
  for (const auto& [pool_threads, interop] :
       {std::pair<int, int>{4, 1}, {2, 2}, {4, 8}, {8, DefaultThreads()}}) {
    ExpectBitIdentical(run(pool_threads, interop), reference,
                       "training-mode states at pool=" +
                           std::to_string(pool_threads) +
                           " interop=" + std::to_string(interop));
  }
}

// Duplicate-index scatter-add under parallelism: the owner-computes kernel
// must accumulate duplicates in exact serial edge order.
TEST(ThreadInvarianceTest, DuplicateScatterAddBitIdentical) {
  const int64_t k = 4096, rows = 37, cols = 19;
  tensor::Tensor src = testing::TestTensor({k, cols}, 33, false);
  std::vector<int64_t> idx(k);
  uint64_t state = 99;
  for (int64_t e = 0; e < k; ++e) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    idx[e] = static_cast<int64_t>((state >> 33) % rows);
  }
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    ScopedDefaultPool guard(&pool);
    return tensor::ScatterAddRows(src, idx, rows).impl().data;
  };
  const std::vector<float> reference = run(1);
  for (int threads : {2, 8, DefaultThreads()}) {
    const std::vector<float> got = run(threads);
    ASSERT_EQ(got.size(), reference.size());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                          got.size() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace retia::par
