#include "simd/simd.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "par/thread_pool.h"

namespace retia::simd {
namespace {

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends;
  for (Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kNeon, Backend::kAvx2}) {
    if (BackendSupported(b)) backends.push_back(b);
  }
  return backends;
}

std::vector<float> RandVec(int64_t n, uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(n));
  uint64_t state = seed * 2654435761u + 1;
  for (float& x : v) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<float>(static_cast<uint32_t>(state >> 33)) /
            4294967295.0f * 4.0f -
        2.0f;
  }
  return v;
}

void ExpectBitEqual(const std::vector<float>& got,
                    const std::vector<float>& want, const char* what,
                    Backend backend) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(
      std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
      << what << " not bit-identical on backend " << BackendName(backend);
}

// Sizes straddling every vector width: sub-vector, exact multiples, and
// odd tails.
const int64_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 100, 257};

// ---- Dispatch --------------------------------------------------------------

TEST(DispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(BackendSupported(Backend::kScalar));
  ASSERT_NE(TableFor(Backend::kScalar), nullptr);
  EXPECT_STREQ(TableFor(Backend::kScalar)->name, "scalar");
  EXPECT_EQ(TableFor(Backend::kScalar)->vector_width, 1);
}

TEST(DispatchTest, BestSupportedIsSupported) {
  EXPECT_TRUE(BackendSupported(BestSupportedBackend()));
}

TEST(DispatchTest, ParseBackend) {
  Backend b = Backend::kAvx2;
  EXPECT_TRUE(ParseBackend("off", &b));
  EXPECT_EQ(b, Backend::kScalar);
  EXPECT_TRUE(ParseBackend("scalar", &b));
  EXPECT_EQ(b, Backend::kScalar);
  EXPECT_TRUE(ParseBackend("native", &b));
  EXPECT_EQ(b, BestSupportedBackend());
  EXPECT_TRUE(ParseBackend("sse2", &b));
  EXPECT_EQ(b, Backend::kSse2);
  EXPECT_TRUE(ParseBackend("avx2", &b));
  EXPECT_EQ(b, Backend::kAvx2);
  EXPECT_TRUE(ParseBackend("neon", &b));
  EXPECT_EQ(b, Backend::kNeon);

  b = Backend::kSse2;
  EXPECT_FALSE(ParseBackend(nullptr, &b));
  EXPECT_FALSE(ParseBackend("", &b));
  EXPECT_FALSE(ParseBackend("AVX2", &b));
  EXPECT_FALSE(ParseBackend("avx512", &b));
  EXPECT_EQ(b, Backend::kSse2) << "failed parse must leave *out untouched";
}

TEST(DispatchTest, BackendNameRoundTrips) {
  for (Backend b : SupportedBackends()) {
    Backend parsed = Backend::kScalar;
    EXPECT_TRUE(ParseBackend(BackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
    EXPECT_STREQ(TableFor(b)->name, BackendName(b));
  }
}

TEST(DispatchTest, ScopedBackendOverridesAndRestores) {
  const Backend before = ActiveBackend();
  {
    ScopedBackend guard(Backend::kScalar);
    EXPECT_EQ(ActiveBackend(), Backend::kScalar);
    EXPECT_STREQ(Kernels().name, "scalar");
  }
  EXPECT_EQ(ActiveBackend(), before);
}

TEST(DispatchTest, ScopedBackendNests) {
  const Backend best = BestSupportedBackend();
  ScopedBackend outer(Backend::kScalar);
  {
    ScopedBackend inner(best);
    EXPECT_EQ(ActiveBackend(), best);
  }
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
}

TEST(DispatchTest, TableShapesAreConsistent) {
  for (Backend b : SupportedBackends()) {
    const KernelTable* t = TableFor(b);
    ASSERT_NE(t, nullptr);
    EXPECT_GE(t->vector_width, 1);
    EXPECT_EQ(t->gemm_strip, b == Backend::kScalar ? 1 : 2 * t->vector_width);
  }
}

// ---- Cross-backend bit-exact kernels ---------------------------------------

TEST(BitExactTest, ElementwiseMatchesScalarBitForBit) {
  const KernelTable* ref = TableFor(Backend::kScalar);
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : kSizes) {
      const std::vector<float> a = RandVec(n, 7 * n + 1);
      const std::vector<float> b = RandVec(n, 13 * n + 5);
      std::vector<float> want(n), got(n);

      ref->add(a.data(), b.data(), want.data(), n);
      t->add(a.data(), b.data(), got.data(), n);
      ExpectBitEqual(got, want, "add", backend);

      ref->sub(a.data(), b.data(), want.data(), n);
      t->sub(a.data(), b.data(), got.data(), n);
      ExpectBitEqual(got, want, "sub", backend);

      ref->mul(a.data(), b.data(), want.data(), n);
      t->mul(a.data(), b.data(), got.data(), n);
      ExpectBitEqual(got, want, "mul", backend);

      ref->scale(a.data(), 0.73f, want.data(), n);
      t->scale(a.data(), 0.73f, got.data(), n);
      ExpectBitEqual(got, want, "scale", backend);

      ref->add_scalar(a.data(), -1.375f, want.data(), n);
      t->add_scalar(a.data(), -1.375f, got.data(), n);
      ExpectBitEqual(got, want, "add_scalar", backend);

      want = b;
      got = b;
      ref->axpy(0.31f, a.data(), want.data(), n);
      t->axpy(0.31f, a.data(), got.data(), n);
      ExpectBitEqual(got, want, "axpy", backend);

      want = b;
      got = b;
      ref->accumulate(a.data(), want.data(), n);
      t->accumulate(a.data(), got.data(), n);
      ExpectBitEqual(got, want, "accumulate", backend);

      const float mref = ref->reduce_max(a.data(), n);
      const float mgot = t->reduce_max(a.data(), n);
      EXPECT_EQ(std::memcmp(&mref, &mgot, sizeof(float)), 0)
          << "reduce_max on " << BackendName(backend) << " n=" << n;
    }
  }
}

TEST(BitExactTest, ElementwiseAllowsAliasedOutput) {
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    const int64_t n = 33;
    const std::vector<float> a = RandVec(n, 3);
    std::vector<float> want(n);
    t->scale(a.data(), 0.5f, want.data(), n);
    std::vector<float> in_place = a;
    t->scale(in_place.data(), 0.5f, in_place.data(), n);
    ExpectBitEqual(in_place, want, "aliased scale", backend);
  }
}

// ---- Tolerance-bound kernels ----------------------------------------------

TEST(ToleranceTest, ExpKernelsNearScalar) {
  const KernelTable* ref = TableFor(Backend::kScalar);
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : kSizes) {
      std::vector<float> x = RandVec(n, 17 * n + 3);
      for (int64_t i = 0; i < n; ++i) x[i] *= 20.0f;  // exercise wide range
      const float shift = ref->reduce_max(x.data(), n);

      std::vector<float> want(n), got(n);
      double want_sum = 0.0, got_sum = 0.0;
      ref->exp_store_sum(x.data(), shift, want.data(), &want_sum, n);
      t->exp_store_sum(x.data(), shift, got.data(), &got_sum, n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], want[i], 2e-6f * std::abs(want[i]) + 1e-12f)
            << BackendName(backend) << " exp_store_sum[" << i << "] n=" << n;
      }
      EXPECT_NEAR(got_sum, want_sum, 2e-6 * want_sum + 1e-12)
          << BackendName(backend) << " sum n=" << n;

      EXPECT_NEAR(t->exp_sum(x.data(), shift, n),
                  ref->exp_sum(x.data(), shift, n), 2e-6 * want_sum + 1e-12)
          << BackendName(backend) << " exp_sum n=" << n;

      const double lse = shift + std::log(want_sum);
      ref->exp_shift_store(x.data(), lse, want.data(), n);
      t->exp_shift_store(x.data(), lse, got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], want[i], 2e-6f * std::abs(want[i]) + 1e-7f)
            << BackendName(backend) << " exp_shift_store[" << i << "]";
      }
    }
  }
}

TEST(ToleranceTest, F64ReductionsNearScalar) {
  const KernelTable* ref = TableFor(Backend::kScalar);
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : kSizes) {
      const std::vector<float> a = RandVec(n, 5 * n);
      const std::vector<float> b = RandVec(n, 11 * n);
      const double dref = ref->dot_f64(a.data(), b.data(), n);
      EXPECT_NEAR(t->dot_f64(a.data(), b.data(), n), dref,
                  1e-9 * (std::abs(dref) + n))
          << BackendName(backend) << " dot_f64 n=" << n;
      const double sref = ref->sum_squares_f64(a.data(), n);
      EXPECT_NEAR(t->sum_squares_f64(a.data(), n), sref, 1e-9 * (sref + n))
          << BackendName(backend) << " sum_squares n=" << n;
    }
  }
}

struct GemmShape {
  int64_t m, k, n;
};

const GemmShape kGemmShapes[] = {{1, 1, 1},   {2, 3, 2},   {3, 5, 7},
                                 {4, 8, 16},  {5, 16, 17}, {17, 33, 9},
                                 {16, 64, 32}, {33, 17, 50}, {64, 128, 64}};

TEST(ToleranceTest, GemmDriversNearScalar) {
  for (Backend backend : SupportedBackends()) {
    for (const GemmShape& s : kGemmShapes) {
      const std::vector<float> a = RandVec(s.m * s.k, s.m * 31 + s.k);
      const std::vector<float> b_nn = RandVec(s.k * s.n, s.n * 17 + 1);
      const std::vector<float> b_nt = RandVec(s.n * s.k, s.n * 19 + 2);
      const std::vector<float> g_tn = RandVec(s.m * s.n, s.m * 23 + 3);

      auto run = [&](Backend use) {
        ScopedBackend guard(use);
        std::vector<std::vector<float>> out;
        out.emplace_back(s.m * s.n);
        GemmNN(a.data(), b_nn.data(), out.back().data(), s.m, s.k, s.n);
        out.emplace_back(s.m * s.n);
        GemmNT(a.data(), b_nt.data(), out.back().data(), s.m, s.k, s.n);
        out.emplace_back(s.k * s.n);
        GemmTN(a.data(), g_tn.data(), out.back().data(), s.m, s.k, s.n);
        return out;
      };
      const auto want = run(Backend::kScalar);
      const auto got = run(backend);
      const char* names[] = {"NN", "NT", "TN"};
      for (int v = 0; v < 3; ++v) {
        ASSERT_EQ(got[v].size(), want[v].size());
        for (size_t i = 0; i < want[v].size(); ++i) {
          // FMA vs separate rounding over up to max(m,k) accumulation steps.
          EXPECT_NEAR(got[v][i], want[v][i],
                      2e-6f * (std::abs(want[v][i]) + 8.0f))
              << BackendName(backend) << " Gemm" << names[v] << " m=" << s.m
              << " k=" << s.k << " n=" << s.n << " elem " << i;
        }
      }
    }
  }
}

// Packs B exactly as simd::GemmNN's PackB does (layout documented on
// KernelTable::gemm_nn), so the dense kernel can be invoked directly.
std::vector<float> PackPanels(const std::vector<float>& b, int64_t k,
                              int64_t n, int64_t strip) {
  const int64_t nstrips = n / strip;
  std::vector<float> packed(static_cast<size_t>(nstrips * k * strip));
  for (int64_t s = 0; s < nstrips; ++s)
    for (int64_t p = 0; p < k; ++p)
      for (int64_t c = 0; c < strip; ++c)
        packed[(s * k + p) * strip + c] = b[p * n + s * strip + c];
  return packed;
}

// The sparse zero-skipping kernel must agree bit-for-bit with the dense
// kernel of the SAME backend: skipped products are exactly zero, and
// adding an exact zero never changes a finite accumulator.
TEST(SparseGemmTest, SparseMatchesDenseBitForBit) {
  const int64_t m = 23, k = 40;
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : {8, 17, 32, 50}) {
      std::vector<float> a(m * k, 0.0f);
      uint64_t state = 12345;
      for (int64_t i = 0; i < m; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        a[i * k + static_cast<int64_t>((state >> 33) % k)] =
            static_cast<float>(static_cast<uint32_t>(state)) / 1e9f - 2.0f;
      }
      const std::vector<float> b = RandVec(k * n, n + 77);
      const std::vector<float> packed =
          PackPanels(b, k, n, t->gemm_strip);

      std::vector<float> dense(m * n, 0.0f);
      t->gemm_nn(a.data(), b.data(),
                 t->needs_packed_b ? packed.data() : b.data(), dense.data(),
                 0, m, k, n);
      std::vector<float> sparse(m * n, 0.0f);
      t->gemm_nn_sparse(a.data(), b.data(), sparse.data(), 0, m, k, n);
      ExpectBitEqual(sparse, dense, "sparse vs dense gemm", backend);
    }
  }
}

// ---- Sharding / thread invariance ------------------------------------------

// Splitting the row range at any point must reproduce the unsplit result
// bit-for-bit (this is what makes tile-aligned sharding a pure perf knob).
TEST(DeterminismTest, RowSplitsAreBitInvariant) {
  const int64_t m = 13, k = 37, n = 29;
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    const std::vector<float> a = RandVec(m * k, 2);
    const std::vector<float> b = RandVec(k * n, 3);
    const std::vector<float> packed = PackPanels(b, k, n, t->gemm_strip);
    const float* bp = t->needs_packed_b ? packed.data() : b.data();

    std::vector<float> whole(m * n);
    t->gemm_nn(a.data(), b.data(), bp, whole.data(), 0, m, k, n);
    for (int64_t split : {1, 4, 7, 12}) {
      std::vector<float> parts(m * n);
      t->gemm_nn(a.data(), b.data(), bp, parts.data(), 0, split, k, n);
      t->gemm_nn(a.data(), b.data(), bp, parts.data(), split, m, k, n);
      ExpectBitEqual(parts, whole, "gemm_nn row split", backend);
    }

    std::vector<float> whole_nt(m * n);
    const std::vector<float> bt = RandVec(n * k, 4);
    t->gemm_nt(a.data(), bt.data(), whole_nt.data(), 0, m, k, n);
    for (int64_t split : {1, 4, 7, 12}) {
      std::vector<float> parts(m * n);
      t->gemm_nt(a.data(), bt.data(), parts.data(), 0, split, k, n);
      t->gemm_nt(a.data(), bt.data(), parts.data(), split, m, k, n);
      ExpectBitEqual(parts, whole_nt, "gemm_nt row split", backend);
    }

    const std::vector<float> g = RandVec(m * n, 5);
    std::vector<float> whole_tn(k * n);
    t->gemm_tn(a.data(), g.data(), whole_tn.data(), m, 0, k, k, n);
    for (int64_t split : {1, 4, 7, 12, 30}) {
      std::vector<float> parts(k * n);
      t->gemm_tn(a.data(), g.data(), parts.data(), m, 0, split, k, n);
      t->gemm_tn(a.data(), g.data(), parts.data(), m, split, k, k, n);
      ExpectBitEqual(parts, whole_tn, "gemm_tn row split", backend);
    }
  }
}

TEST(DeterminismTest, GemmDriversThreadCountInvariant) {
  const int64_t m = 200, k = 96, n = 64;
  const std::vector<float> a = RandVec(m * k, 31);
  const std::vector<float> b = RandVec(k * n, 32);
  for (Backend backend : SupportedBackends()) {
    ScopedBackend guard(backend);
    auto run = [&](int threads) {
      par::ThreadPool pool(threads);
      par::ScopedDefaultPool pool_guard(&pool);
      std::vector<float> out(m * n);
      GemmNN(a.data(), b.data(), out.data(), m, k, n);
      return out;
    };
    const std::vector<float> reference = run(1);
    for (int threads : {2, 8}) {
      ExpectBitEqual(run(threads), reference, "GemmNN across thread counts",
                     backend);
    }
  }
}

// The one-hot fast path keeps full-matrix results identical to the dense
// route through the public driver.
TEST(SparseGemmTest, DriverOneHotMatchesDense) {
  const int64_t m = 64, k = 100, n = 48;
  std::vector<float> onehot(m * k, 0.0f);
  for (int64_t i = 0; i < m; ++i) onehot[i * k + (i * 13) % k] = 1.5f;
  const std::vector<float> b = RandVec(k * n, 9);
  for (Backend backend : SupportedBackends()) {
    ScopedBackend guard(backend);
    const KernelTable* t = TableFor(backend);
    std::vector<float> via_driver(m * n);  // routed to the sparse kernel
    GemmNN(onehot.data(), b.data(), via_driver.data(), m, k, n);
    const std::vector<float> packed = PackPanels(b, k, n, t->gemm_strip);
    std::vector<float> dense(m * n, 0.0f);
    t->gemm_nn(onehot.data(), b.data(),
               t->needs_packed_b ? packed.data() : b.data(), dense.data(), 0,
               m, k, n);
    ExpectBitEqual(via_driver, dense, "one-hot driver vs dense kernel",
                   backend);
  }
}

TEST(AdamTest, AdamNearScalarAndExactTails) {
  const KernelTable* ref = TableFor(Backend::kScalar);
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : kSizes) {
      auto run = [&](const KernelTable* table) {
        std::vector<float> w = RandVec(n, n + 1);
        const std::vector<float> g = RandVec(n, n + 2);
        std::vector<float> m(n, 0.0f), v(n, 0.0f);
        for (int step = 1; step <= 3; ++step) {
          const float bc1 = 1.0f - std::pow(0.9f, static_cast<float>(step));
          const float bc2 = 1.0f - std::pow(0.999f, static_cast<float>(step));
          table->adam_update(w.data(), g.data(), m.data(), v.data(), n, 0.01f,
                             0.9f, 0.999f, 1e-8f, 0.001f, bc1, bc2);
        }
        return w;
      };
      const std::vector<float> want = run(ref);
      const std::vector<float> got = run(t);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[i], want[i], 1e-5f * (std::abs(want[i]) + 1.0f))
            << BackendName(backend) << " adam n=" << n << " elem " << i;
      }
    }
  }
}

// ---- Top-k selection -------------------------------------------------------

// Reference: the historical full-sort formulation of eval::TopKIndices'
// contract ("higher score wins, ties broken by the lower index").
std::vector<int64_t> TopKReference(const std::vector<float>& scores,
                                   int64_t k) {
  const int64_t n = static_cast<int64_t>(scores.size());
  const int64_t take = std::min(k, n);
  std::vector<int64_t> idx(n);
  for (int64_t i = 0; i < n; ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + take, idx.end(),
                    [&scores](int64_t a, int64_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(take);
  return idx;
}

void ExpectTopK(const KernelTable* t, const std::vector<float>& scores,
                int64_t k, Backend backend, const char* what) {
  const std::vector<int64_t> want = TopKReference(scores, k);
  std::vector<int64_t> got(std::min<int64_t>(
      k, static_cast<int64_t>(scores.size())));
  const int64_t took = t->topk_select_f32(
      scores.data(), static_cast<int64_t>(scores.size()), k, got.data());
  ASSERT_EQ(took, static_cast<int64_t>(want.size()))
      << what << " backend " << BackendName(backend) << " k=" << k;
  got.resize(took);
  EXPECT_EQ(got, want) << what << " backend " << BackendName(backend)
                       << " k=" << k << " n=" << scores.size();
}

TEST(TopKSelectTest, MatchesPartialSortReferenceOnEveryBackend) {
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : kSizes) {
      const std::vector<float> scores = RandVec(n, 31 * n + 3);
      for (int64_t k : {int64_t{1}, int64_t{3}, int64_t{10}, n / 2, n, n + 7}) {
        if (k <= 0) continue;
        ExpectTopK(t, scores, k, backend, "random");
      }
    }
  }
}

TEST(TopKSelectTest, TiesBreakByLowerIndexOnEveryBackend) {
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : kSizes) {
      // Quantize to a handful of distinct values so ties are everywhere,
      // including runs straddling vector-block boundaries.
      std::vector<float> scores = RandVec(n, 17 * n + 11);
      for (float& s : scores) s = std::floor(s * 2.0f) * 0.5f;
      for (int64_t k : {int64_t{1}, int64_t{5}, n, n + 3}) {
        if (k <= 0) continue;
        ExpectTopK(t, scores, k, backend, "ties");
      }
      // The adversarial extreme: every element ties, so the answer must be
      // exactly the first min(k, n) indices.
      const std::vector<float> equal(static_cast<size_t>(n), 1.25f);
      ExpectTopK(t, equal, std::min<int64_t>(5, n), backend, "all-equal");
    }
  }
}

TEST(TopKSelectTest, EdgeShapes) {
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    int64_t idx[4] = {-1, -1, -1, -1};
    // k == 0 and n == 0 select nothing (and never touch idx).
    const float one = 3.5f;
    EXPECT_EQ(t->topk_select_f32(&one, 1, 0, idx), 0);
    EXPECT_EQ(t->topk_select_f32(&one, 0, 4, idx), 0);
    EXPECT_EQ(idx[0], -1);
    // Descending and ascending inputs (worst cases for the insertion
    // buffer on one side and the threshold filter on the other).
    std::vector<float> descending, ascending;
    for (int64_t i = 0; i < 40; ++i) {
      descending.push_back(static_cast<float>(100 - i));
      ascending.push_back(static_cast<float>(i));
    }
    ExpectTopK(t, descending, 7, backend, "descending");
    ExpectTopK(t, ascending, 7, backend, "ascending");
    // Negative scores keep the same order semantics.
    std::vector<float> negative = RandVec(33, 97);
    for (float& s : negative) s = -std::abs(s) - 1.0f;
    ExpectTopK(t, negative, 5, backend, "negative");
  }
}

TEST(TopKSelectTest, BackendsBitIdenticalToScalar) {
  const KernelTable* ref = TableFor(Backend::kScalar);
  for (Backend backend : SupportedBackends()) {
    const KernelTable* t = TableFor(backend);
    for (int64_t n : {int64_t{64}, int64_t{257}, int64_t{1000}}) {
      std::vector<float> scores = RandVec(n, 7 * n + 29);
      for (float& s : scores) s = std::floor(s * 8.0f) * 0.125f;  // some ties
      for (int64_t k : {int64_t{1}, int64_t{10}, int64_t{64}}) {
        std::vector<int64_t> want(k), got(k);
        const int64_t want_n =
            ref->topk_select_f32(scores.data(), n, k, want.data());
        const int64_t got_n =
            t->topk_select_f32(scores.data(), n, k, got.data());
        ASSERT_EQ(got_n, want_n);
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              static_cast<size_t>(want_n) * sizeof(int64_t)),
                  0)
            << "topk not bit-identical on backend " << BackendName(backend)
            << " n=" << n << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace retia::simd
