// Stress battery for retia::par::TaskGraph (DESIGN.md §12).
//
// The scheduler's contract has three load-bearing clauses, and each gets
// adversarial coverage here:
//   1. Dependency order — a task never starts before every dependency
//      finished, for randomized DAGs across pool sizes and concurrency
//      caps (the TSan matrix in scripts/check.sh runs this file too, so
//      the happens-before edge through the graph mutex is machine-checked,
//      not just argued).
//   2. Failure semantics — dependents of a failed task are skipped
//      (transitively), independent tasks still run, and Run() rethrows
//      the lowest-id failure: a deterministic choice even when several
//      independent tasks throw concurrently.
//   3. Nested submission — a running task may Add() follow-up work to the
//      same graph, and task bodies may issue nested intra-op ParallelRun.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "par/parallel_for.h"
#include "par/task_graph.h"
#include "par/thread_pool.h"

namespace retia::par {
namespace {

// ---------------------------------------------------------------------------
// InteropThreads knob.

TEST(InteropThreadsTest, ScopedOverrideAppliesAndRestores) {
  const int base = InteropThreads();
  EXPECT_GE(base, 1);
  {
    ScopedInteropThreads guard(3);
    EXPECT_EQ(InteropThreads(), 3);
    {
      ScopedInteropThreads inner(1);
      EXPECT_EQ(InteropThreads(), 1);
    }
    EXPECT_EQ(InteropThreads(), 3);
  }
  EXPECT_EQ(InteropThreads(), base);
}

// ---------------------------------------------------------------------------
// Basic shape.

TEST(TaskGraphTest, EmptyGraphRuns) {
  TaskGraph graph;
  graph.Run();
  EXPECT_EQ(graph.size(), 0);
  EXPECT_EQ(graph.tasks_succeeded(), 0);
}

TEST(TaskGraphTest, SingleTaskRunsOnCaller) {
  ThreadPool pool(1);
  TaskGraph graph;
  int runs = 0;
  graph.Add([&] { ++runs; });
  graph.Run(&pool);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(graph.tasks_succeeded(), 1);
}

// With a cap of 1 the caller alone drains the ready queue in FIFO order:
// the serial path every other thread count must bit-match.
TEST(TaskGraphTest, CapOneExecutesInDeterministicFifoOrder) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::vector<int> order;
  // Diamond plus independent tail: 0 -> {1, 2} -> 3, then 4, 5 free.
  const TaskGraph::TaskId a = graph.Add([&] { order.push_back(0); });
  const TaskGraph::TaskId b = graph.Add([&] { order.push_back(1); }, {a});
  const TaskGraph::TaskId c = graph.Add([&] { order.push_back(2); }, {a});
  graph.Add([&] { order.push_back(3); }, {b, c});
  graph.Add([&] { order.push_back(4); });
  graph.Add([&] { order.push_back(5); });
  graph.Run(&pool, /*max_concurrency=*/1);
  // Ready-queue FIFO: sources in insertion order first, then unblocked
  // tasks in the order their last dependency finished.
  const std::vector<int> expected = {0, 4, 5, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

// ---------------------------------------------------------------------------
// Randomized-DAG stress: dependency order holds for every (pool size,
// concurrency cap) combination. Start/finish stamps are drawn from one
// atomic clock; a task's start stamp must be later than every
// dependency's finish stamp.

struct StressCase {
  int pool_threads;
  int cap;
  uint64_t seed;
};

class TaskGraphStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(TaskGraphStressTest, RandomDagRespectsDependencyOrder) {
  const StressCase param = GetParam();
  const int64_t kTasks = 60;
  uint64_t state = param.seed * 2654435761ull + 1;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };

  // Edges only point backwards (to lower ids), so the graph is a DAG by
  // construction; up to 3 deps per task biased toward recent tasks.
  std::vector<std::vector<TaskGraph::TaskId>> deps(kTasks);
  for (int64_t i = 1; i < kTasks; ++i) {
    const int64_t count = static_cast<int64_t>(next() % 4);
    for (int64_t d = 0; d < count; ++d) {
      const int64_t lookback = 1 + static_cast<int64_t>(next() % 8);
      deps[i].push_back(std::max<int64_t>(0, i - lookback));
    }
  }

  std::atomic<int64_t> clock{0};
  std::vector<std::atomic<int64_t>> start(kTasks), finish(kTasks);
  for (int64_t i = 0; i < kTasks; ++i) {
    start[i].store(-1);
    finish[i].store(-1);
  }

  ThreadPool pool(param.pool_threads);
  TaskGraph graph;
  for (int64_t i = 0; i < kTasks; ++i) {
    graph.Add(
        [&, i] {
          start[i].store(clock.fetch_add(1));
          // A little real work, including a nested intra-op region, so
          // tasks genuinely overlap instead of finishing instantly.
          int64_t sum = 0;
          std::mutex mu;
          pool.ParallelRun(4, [&](int64_t shard) {
            std::lock_guard<std::mutex> lock(mu);
            sum += shard;
          });
          ASSERT_EQ(sum, 6);
          finish[i].store(clock.fetch_add(1));
        },
        deps[i]);
  }
  graph.Run(&pool, param.cap);

  EXPECT_EQ(graph.size(), kTasks);
  EXPECT_EQ(graph.tasks_succeeded(), kTasks);
  EXPECT_EQ(graph.tasks_skipped(), 0);
  for (int64_t i = 0; i < kTasks; ++i) {
    ASSERT_GE(start[i].load(), 0) << "task " << i << " never ran";
    ASSERT_GT(finish[i].load(), start[i].load());
    for (TaskGraph::TaskId d : deps[i]) {
      EXPECT_GT(start[i].load(), finish[d].load())
          << "task " << i << " started before dependency " << d
          << " finished (pool=" << param.pool_threads
          << " cap=" << param.cap << " seed=" << param.seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoolAndCapMatrix, TaskGraphStressTest,
    ::testing::Values(StressCase{1, 1, 7}, StressCase{1, 4, 11},
                      StressCase{2, 2, 13}, StressCase{4, 4, 17},
                      StressCase{4, 8, 19}, StressCase{8, 3, 23},
                      StressCase{4, 4, 29}, StressCase{4, 4, 31}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return "pool" + std::to_string(info.param.pool_threads) + "cap" +
             std::to_string(info.param.cap) + "seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Exception propagation.

TEST(TaskGraphTest, ExceptionSkipsDependentsAndPropagates) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<int> ran{0};
  const TaskGraph::TaskId bad =
      graph.Add([] { throw std::runtime_error("task 0 failed"); });
  const TaskGraph::TaskId child = graph.Add([&] { ++ran; }, {bad});
  graph.Add([&] { ++ran; }, {child});  // transitively skipped
  graph.Add([&] { ++ran; });           // independent: still runs
  try {
    graph.Run(&pool);
    FAIL() << "Run() swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task 0 failed");
  }
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(graph.tasks_succeeded(), 1);
  EXPECT_EQ(graph.tasks_skipped(), 2);
}

// Several independent failures: the rethrown error is the lowest-id one,
// a deterministic choice regardless of which task physically threw first.
TEST(TaskGraphTest, LowestIdFailureWinsAcrossConcurrentThrows) {
  for (int pool_threads : {1, 4}) {
    ThreadPool pool(pool_threads);
    TaskGraph graph;
    graph.Add([] {});  // id 0 succeeds
    for (int i = 1; i <= 4; ++i) {
      graph.Add([i] { throw std::runtime_error("boom " + std::to_string(i)); });
    }
    try {
      graph.Run(&pool);
      FAIL() << "Run() swallowed the task exceptions";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "boom 1")
          << "pool=" << pool_threads;
    }
    EXPECT_EQ(graph.tasks_succeeded(), 1);
  }
}

// A task added while its dependency chain is already failing is skipped
// on arrival rather than deadlocking the run.
TEST(TaskGraphTest, NestedAddOntoFailedDependencyIsSkipped) {
  ThreadPool pool(2);
  TaskGraph graph;
  std::atomic<int> ran{0};
  const TaskGraph::TaskId bad =
      graph.Add([] { throw std::runtime_error("early"); });
  graph.Add([&graph, &ran, bad] {
    // By the time this runs, `bad` has already failed (it is the only
    // other source task on a FIFO queue ahead of us... but even if the
    // pool raced, Add() handles both the already-failed and the
    // not-yet-finished case).
    graph.Add([&ran] { ++ran; }, {bad});
  });
  EXPECT_THROW(graph.Run(&pool), std::runtime_error);
  EXPECT_EQ(ran.load(), 0);
}

// ---------------------------------------------------------------------------
// Nested submission: tasks extend the running graph, recursively.

TEST(TaskGraphTest, NestedAddJoinsTheSameRun) {
  for (int pool_threads : {1, 4}) {
    ThreadPool pool(pool_threads);
    TaskGraph graph;
    std::atomic<int64_t> sum{0};
    // Each generation spawns the next until depth 5: 1+2+4+8+16+32 tasks.
    std::function<void(int64_t)> spawn = [&](int64_t depth) {
      sum.fetch_add(1);
      if (depth == 5) return;
      const TaskGraph::TaskId left = graph.Add([&spawn, depth] {
        spawn(depth + 1);
      });
      graph.Add([&spawn, depth] { spawn(depth + 1); }, {left});
    };
    graph.Add([&spawn] { spawn(0); });
    graph.Run(&pool);
    EXPECT_EQ(sum.load(), 63) << "pool=" << pool_threads;
    EXPECT_EQ(graph.size(), 63);
    EXPECT_EQ(graph.tasks_succeeded(), 63);
  }
}

// A chained pipeline shaped like the trainer's epoch loop: prefetch tasks
// free, body tasks chained. The bodies must observe strict program order
// even when prefetches run wildly out of order.
TEST(TaskGraphTest, PipelinedChainPreservesProgramOrder) {
  ThreadPool pool(4);
  const int64_t kSteps = 40;
  std::vector<int64_t> body_order;
  std::atomic<int64_t> prefetches{0};
  TaskGraph graph;
  TaskGraph::TaskId prev = TaskGraph::kInvalid;
  for (int64_t t = 0; t < kSteps; ++t) {
    const TaskGraph::TaskId prefetch =
        graph.Add([&prefetches] { prefetches.fetch_add(1); });
    std::vector<TaskGraph::TaskId> deps = {prefetch};
    if (prev != TaskGraph::kInvalid) deps.push_back(prev);
    prev = graph.Add([&body_order, t] { body_order.push_back(t); }, deps);
  }
  graph.Run(&pool);
  EXPECT_EQ(prefetches.load(), kSteps);
  ASSERT_EQ(static_cast<int64_t>(body_order.size()), kSteps);
  for (int64_t t = 0; t < kSteps; ++t) EXPECT_EQ(body_order[t], t);
}

// Regression: tasks may Run() a TaskGraph of their OWN (the trainer's
// chained step evolves through Evolve's inner graph). The inner Run used
// to wait for its queued runner jobs — but with every pool worker itself
// blocked in an inner Run of its own, nothing ever drained the pool queue
// and the process deadlocked (caught live in serve_demo). Now Run()
// returns as soon as the graph quiesces and late runners are no-ops on
// shared-owned state, so this must complete at every pool size.
TEST(TaskGraphTest, NestedRunInsideTasksDoesNotDeadlock) {
  for (int pool_threads : {1, 2, 4}) {
    ThreadPool pool(pool_threads);
    std::atomic<int64_t> inner_sum{0};
    TaskGraph outer;
    TaskGraph::TaskId prev = TaskGraph::kInvalid;
    for (int64_t i = 0; i < 12; ++i) {
      // Chain every other task so the shape matches the trainer: free
      // tasks saturate the workers while chained ones keep the queue hot.
      std::vector<TaskGraph::TaskId> deps;
      if (i % 2 == 1 && prev != TaskGraph::kInvalid) deps.push_back(prev);
      const TaskGraph::TaskId id = outer.Add(
          [&pool, &inner_sum] {
            TaskGraph inner;
            TaskGraph::TaskId tail = TaskGraph::kInvalid;
            for (int64_t j = 0; j < 6; ++j) {
              std::vector<TaskGraph::TaskId> ideps;
              if (tail != TaskGraph::kInvalid) ideps.push_back(tail);
              tail = inner.Add([&inner_sum] { inner_sum.fetch_add(1); },
                               ideps);
            }
            inner.Run(&pool, /*max_concurrency=*/4);
          },
          deps);
      if (i % 2 == 1) prev = id;
    }
    outer.Run(&pool, /*max_concurrency=*/4);
    EXPECT_EQ(inner_sum.load(), 12 * 6) << "pool=" << pool_threads;
    EXPECT_EQ(outer.tasks_succeeded(), 12);
  }
}

}  // namespace
}  // namespace retia::par
