#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace retia::util {
namespace {

// ---------------------------------------------------------------------------
// Check macros.

TEST(CheckTest, PassingConditionsAreSilent) {
  RETIA_CHECK(true);
  RETIA_CHECK_EQ(1, 1);
  RETIA_CHECK_LT(1, 2);
  RETIA_CHECK_LE(2, 2);
  RETIA_CHECK_MSG(true, "never shown");
}

TEST(CheckTest, FailureAborts) {
  EXPECT_DEATH(RETIA_CHECK(false), "expected false");
  EXPECT_DEATH(RETIA_CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(RETIA_CHECK_LT(3, 2), "3 vs 2");
  EXPECT_DEATH(RETIA_CHECK_MSG(false, "context " << 42), "context 42");
}

// ---------------------------------------------------------------------------
// Rng.

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformWithinRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.Uniform(-2.0f, 3.0f);
    EXPECT_LE(-2.0f, x);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen, (std::set<int64_t>{0, 1, 2, 3}));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(12);
  const int64_t n = 100;
  std::vector<int64_t> counts(n, 0);
  for (int i = 0; i < 20'000; ++i) {
    const int64_t x = rng.Zipf(n, 1.2);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, n);
    ++counts[x];
  }
  // Head item must be much more popular than the tail.
  EXPECT_GT(counts[0], counts[n - 1] * 5);
  // And the ordering should be broadly decreasing: head quartile dominates.
  int64_t head = 0, tail = 0;
  for (int64_t i = 0; i < n / 4; ++i) head += counts[i];
  for (int64_t i = 3 * n / 4; i < n; ++i) tail += counts[i];
  EXPECT_GT(head, tail * 2);
}

TEST(RngTest, ZipfAlphaZeroIsUniform) {
  Rng rng(13);
  std::vector<int64_t> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Zipf(4, 0.0)];
  for (int64_t c : counts) EXPECT_NEAR(c, 2000, 300);
}

// ---------------------------------------------------------------------------
// Timer / duration formatting.

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 2'000'000; ++i) x += std::sqrt(i);
  EXPECT_GT(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), 0.0);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);  // reset rewinds the stopwatch
}

TEST(FormatDurationTest, PicksPaperUnits) {
  EXPECT_EQ(FormatDuration(3.33), "3.33 s");
  EXPECT_EQ(FormatDuration(8.46 * 60), "8.46 min");
  EXPECT_EQ(FormatDuration(3.93 * 3600), "3.93 h");
  EXPECT_EQ(FormatDuration(2.26 * 86400), "2.26 d");
}

// ---------------------------------------------------------------------------
// TablePrinter.

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long_header"});
  table.AddRow({"xxxxxx", "1"});
  std::ostringstream oss;
  table.Print(oss);
  const std::string out = oss.str();
  // Header, separator, one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
}

TEST(TablePrinterTest, ArityMismatchDies) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "expected");
}

TEST(TablePrinterTest, NumFormatsAndDashesNegatives) {
  EXPECT_EQ(TablePrinter::Num(45.288), "45.29");
  EXPECT_EQ(TablePrinter::Num(45.288, 1), "45.3");
  EXPECT_EQ(TablePrinter::Num(-1.0), "-");
}

TEST(RngStateTest, SaveLoadResumesTheExactStream) {
  Rng src(7);
  for (int i = 0; i < 123; ++i) src.Normal(1.0f);
  const std::string state = src.SaveStateString();

  Rng dst(1);  // different seed, fully overwritten by the state load
  ASSERT_TRUE(dst.LoadStateString(state));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(src.Uniform(0.0f, 1.0f), dst.Uniform(0.0f, 1.0f));
    EXPECT_EQ(src.UniformInt(0, 1000), dst.UniformInt(0, 1000));
  }
}

TEST(RngStateTest, GarbageStateIsRejectedAndLeavesEngineUntouched) {
  Rng a(3);
  Rng b(3);
  EXPECT_FALSE(a.LoadStateString("not an engine state"));
  // The failed load must not have disturbed the stream.
  EXPECT_EQ(a.Uniform(0.0f, 1.0f), b.Uniform(0.0f, 1.0f));
}

TEST(EnvTest, ParseIntAcceptsIntegersOnly) {
  int64_t v = -1;
  EXPECT_TRUE(Env::ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(Env::ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  v = 99;
  EXPECT_FALSE(Env::ParseInt(nullptr, &v));
  EXPECT_FALSE(Env::ParseInt("", &v));
  EXPECT_FALSE(Env::ParseInt("4x", &v));
  EXPECT_FALSE(Env::ParseInt("abc", &v));
  EXPECT_EQ(v, 99);  // untouched on failure
}

TEST(EnvTest, ParseBoolAcceptsCommonSpellings) {
  bool v = false;
  EXPECT_TRUE(Env::ParseBool("1", &v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(Env::ParseBool("off", &v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(Env::ParseBool("TRUE", &v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(Env::ParseBool("no", &v));
  EXPECT_FALSE(v);
  EXPECT_FALSE(Env::ParseBool("maybe", &v));
  EXPECT_FALSE(Env::ParseBool(nullptr, &v));
}

TEST(EnvTest, TypedAccessorsFallBackOnJunk) {
  ::setenv("RETIA_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(Env::IntOr("RETIA_TEST_ENV_INT", 5), 17);
  ::setenv("RETIA_TEST_ENV_INT", "junk", 1);
  EXPECT_EQ(Env::IntOr("RETIA_TEST_ENV_INT", 5), 5);
  ::setenv("RETIA_TEST_ENV_INT", "-3", 1);
  EXPECT_EQ(Env::PositiveIntOr("RETIA_TEST_ENV_INT", 8), 8);
  ::unsetenv("RETIA_TEST_ENV_INT");
  EXPECT_EQ(Env::IntOr("RETIA_TEST_ENV_INT", 5), 5);
  EXPECT_FALSE(Env::IsSet("RETIA_TEST_ENV_INT"));

  ::setenv("RETIA_TEST_ENV_STR", "hello", 1);
  EXPECT_EQ(Env::StringOr("RETIA_TEST_ENV_STR", "d"), "hello");
  ::unsetenv("RETIA_TEST_ENV_STR");
  EXPECT_EQ(Env::StringOr("RETIA_TEST_ENV_STR", "d"), "d");

  ::setenv("RETIA_TEST_ENV_BOOL", "yes", 1);
  EXPECT_TRUE(Env::BoolOr("RETIA_TEST_ENV_BOOL", false));
  ::setenv("RETIA_TEST_ENV_BOOL", "whatever", 1);
  EXPECT_FALSE(Env::BoolOr("RETIA_TEST_ENV_BOOL", false));
  ::unsetenv("RETIA_TEST_ENV_BOOL");
}

}  // namespace
}  // namespace retia::util
