#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "tkg/dataset.h"

namespace retia::eval {
namespace {

// ---------------------------------------------------------------------------
// RankOf.

TEST(RankOfTest, BestScoreRanksFirst) {
  const float scores[] = {0.1f, 0.9f, 0.3f};
  EXPECT_EQ(RankOf(scores, 3, 1), 1);
}

TEST(RankOfTest, WorstScoreRanksLast) {
  const float scores[] = {0.1f, 0.9f, 0.3f};
  EXPECT_EQ(RankOf(scores, 3, 0), 3);
}

TEST(RankOfTest, TiesAreOptimistic) {
  const float scores[] = {0.5f, 0.5f, 0.5f};
  EXPECT_EQ(RankOf(scores, 3, 2), 1);
}

TEST(RankOfTest, SingleCandidate) {
  const float scores[] = {0.0f};
  EXPECT_EQ(RankOf(scores, 1, 0), 1);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, PerfectRanking) {
  Metrics m;
  for (int i = 0; i < 10; ++i) m.AddRank(1);
  EXPECT_DOUBLE_EQ(m.Mrr(), 100.0);
  EXPECT_DOUBLE_EQ(m.Hits1(), 100.0);
  EXPECT_DOUBLE_EQ(m.Hits10(), 100.0);
}

TEST(MetricsTest, KnownMixture) {
  Metrics m;
  m.AddRank(1);   // hits@1,3,10; rr 1
  m.AddRank(2);   // hits@3,10;   rr 0.5
  m.AddRank(4);   // hits@10;     rr 0.25
  m.AddRank(20);  // none;        rr 0.05
  EXPECT_NEAR(m.Mrr(), 100.0 * (1.0 + 0.5 + 0.25 + 0.05) / 4, 1e-9);
  EXPECT_DOUBLE_EQ(m.Hits1(), 25.0);
  EXPECT_DOUBLE_EQ(m.Hits3(), 50.0);
  EXPECT_DOUBLE_EQ(m.Hits10(), 75.0);
  EXPECT_EQ(m.count(), 4);
}

TEST(MetricsTest, EmptyMetricsAreZero) {
  Metrics m;
  EXPECT_EQ(m.Mrr(), 0.0);
  EXPECT_EQ(m.count(), 0);
}

TEST(MetricsTest, MergeAccumulates) {
  Metrics a;
  a.AddRank(1);
  Metrics b;
  b.AddRank(2);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_NEAR(a.Mrr(), 75.0, 1e-9);
}

TEST(MetricsTest, RankZeroDies) {
  Metrics m;
  EXPECT_DEATH(m.AddRank(0), "expected");
}

// ---------------------------------------------------------------------------
// EvaluateTimes with stub scorers.

tkg::TkgDataset StubDataset() {
  // 4 entities, 2 relations, facts at timestamps 0..2.
  std::vector<tkg::Quadruple> train = {{0, 0, 1, 0}, {1, 1, 2, 0}};
  std::vector<tkg::Quadruple> valid = {{0, 0, 1, 1}};
  std::vector<tkg::Quadruple> test = {{2, 1, 3, 2}, {0, 0, 1, 2}};
  return tkg::TkgDataset("stub", 4, 2, train, valid, test);
}

// Oracle scorer: always puts probability 1 on the true answer. The ground
// truth for the i-th query is recoverable because EvaluateTimes issues
// queries in fact order: object then subject per fact.
TEST(EvaluateTimesTest, OracleScorerGetsPerfectMetrics) {
  tkg::TkgDataset ds = StubDataset();
  ObjectScoreFn object_fn =
      [&](int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        const auto& facts = ds.FactsAt(t);
        tensor::Tensor scores =
            tensor::Tensor::Zeros({static_cast<int64_t>(queries.size()), 4});
        for (size_t i = 0; i < queries.size(); ++i) {
          const tkg::Quadruple& q = facts[i / 2];
          const int64_t target = (i % 2 == 0) ? q.object : q.subject;
          scores.At(i, target) = 1.0f;
        }
        return scores;
      };
  RelationScoreFn relation_fn =
      [&](int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        const auto& facts = ds.FactsAt(t);
        tensor::Tensor scores =
            tensor::Tensor::Zeros({static_cast<int64_t>(queries.size()), 2});
        for (size_t i = 0; i < queries.size(); ++i) {
          scores.At(i, facts[i].relation) = 1.0f;
        }
        return scores;
      };
  EvalResult r = EvaluateTimes(ds, ds.test_times(), object_fn, relation_fn);
  EXPECT_DOUBLE_EQ(r.entity.Mrr(), 100.0);
  EXPECT_DOUBLE_EQ(r.relation.Mrr(), 100.0);
  EXPECT_EQ(r.entity.count(), 4);  // 2 facts x 2 directions
  EXPECT_EQ(r.relation.count(), 2);
}

TEST(EvaluateTimesTest, AntiOracleRanksLast) {
  tkg::TkgDataset ds = StubDataset();
  ObjectScoreFn object_fn =
      [&](int64_t t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        const auto& facts = ds.FactsAt(t);
        tensor::Tensor scores =
            tensor::Tensor::Zeros({static_cast<int64_t>(queries.size()), 4});
        for (size_t i = 0; i < queries.size(); ++i) {
          const tkg::Quadruple& q = facts[i / 2];
          const int64_t target = (i % 2 == 0) ? q.object : q.subject;
          scores.At(i, target) = -1.0f;  // strictly below every other score
        }
        return scores;
      };
  EvalOptions options;
  options.evaluate_relations = false;
  EvalResult r =
      EvaluateTimes(ds, ds.test_times(), object_fn, nullptr, options);
  EXPECT_DOUBLE_EQ(r.entity.Hits10(), 100.0);  // only 4 candidates
  EXPECT_DOUBLE_EQ(r.entity.Hits3(), 0.0);
  EXPECT_NEAR(r.entity.Mrr(), 25.0, 1e-9);  // rank 4 -> rr 0.25
}

TEST(EvaluateTimesTest, AfterTimestampHookFiresPerTimestamp) {
  tkg::TkgDataset ds = StubDataset();
  ObjectScoreFn object_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        return tensor::Tensor::Zeros(
            {static_cast<int64_t>(queries.size()), 4});
      };
  std::vector<int64_t> visited;
  EvalOptions options;
  options.evaluate_relations = false;
  EvaluateTimes(ds, {1, 2}, object_fn, nullptr, options,
                [&](int64_t t) { visited.push_back(t); });
  EXPECT_EQ(visited, (std::vector<int64_t>{1, 2}));
}

TEST(EvaluateTimesTest, SkipsEmptyTimestamps) {
  tkg::TkgDataset ds = StubDataset();
  int64_t calls = 0;
  ObjectScoreFn object_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        ++calls;
        return tensor::Tensor::Zeros(
            {static_cast<int64_t>(queries.size()), 4});
      };
  EvalOptions options;
  options.evaluate_relations = false;
  EvaluateTimes(ds, {5, 6, 7}, object_fn, nullptr, options);
  EXPECT_EQ(calls, 0);
}

TEST(EvaluateTimesTest, EntityOnlyOptionSkipsRelationScorer) {
  tkg::TkgDataset ds = StubDataset();
  ObjectScoreFn object_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        return tensor::Tensor::Zeros(
            {static_cast<int64_t>(queries.size()), 4});
      };
  RelationScoreFn relation_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>&)
      -> tensor::Tensor {
    ADD_FAILURE() << "relation scorer must not be called";
    return tensor::Tensor::Zeros({1, 2});
  };
  EvalOptions options;
  options.evaluate_relations = false;
  EvalResult r =
      EvaluateTimes(ds, ds.test_times(), object_fn, relation_fn, options);
  EXPECT_EQ(r.relation.count(), 0);
}

}  // namespace
}  // namespace retia::eval
