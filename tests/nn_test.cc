#include <cmath>

#include <gtest/gtest.h>

#include "grad_check.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/rnn_cells.h"
#include "tensor/ops.h"

namespace retia::nn {
namespace {

using tensor::Tensor;
using ::retia::testing::CheckGradients;
using ::retia::testing::TestTensor;

// ---------------------------------------------------------------------------
// Module registry.

class ToyModule : public Module {
 public:
  explicit ToyModule(util::Rng* rng) : child_(3, 2, rng) {
    w_ = RegisterParameter("w", XavierUniform({2, 2}, rng));
    RegisterModule("child", &child_);
  }
  Linear child_;
  Tensor w_;
};

TEST(ModuleTest, ParametersIncludeChildren) {
  util::Rng rng(1);
  ToyModule m(&rng);
  // w (4) + child weight (6) + child bias (2).
  EXPECT_EQ(m.Parameters().size(), 3u);
  EXPECT_EQ(m.NumParameters(), 12);
}

TEST(ModuleTest, NamedParametersHavePrefixedNames) {
  util::Rng rng(1);
  ToyModule m(&rng);
  auto named = m.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "w");
  EXPECT_EQ(named[1].first, "child.weight");
  EXPECT_EQ(named[2].first, "child.bias");
}

TEST(ModuleTest, SetTrainingPropagates) {
  util::Rng rng(1);
  ToyModule m(&rng);
  m.SetTraining(false);
  EXPECT_FALSE(m.training());
  EXPECT_FALSE(m.child_.training());
  m.SetTraining(true);
  EXPECT_TRUE(m.child_.training());
}

TEST(ModuleTest, ZeroGradClearsAllParameters) {
  util::Rng rng(1);
  ToyModule m(&rng);
  tensor::Sum(tensor::MatMul(m.w_, m.child_.weight())).Backward();
  EXPECT_TRUE(m.w_.HasGrad());
  m.ZeroGrad();
  for (float g : m.w_.Grad()) EXPECT_EQ(g, 0.0f);
}

// ---------------------------------------------------------------------------
// Init.

TEST(InitTest, XavierUniformWithinBound) {
  util::Rng rng(2);
  Tensor t = XavierUniform({16, 8}, &rng);
  const float bound = std::sqrt(6.0f / (16 + 8));
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_LE(std::fabs(t.Data()[i]), bound);
  }
}

TEST(InitTest, XavierNotDegenerate) {
  util::Rng rng(3);
  Tensor t = XavierUniform({32, 32}, &rng);
  double mean = 0.0;
  for (int64_t i = 0; i < t.NumElements(); ++i) mean += t.Data()[i];
  mean /= t.NumElements();
  EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST(InitTest, NormalInitStddev) {
  util::Rng rng(4);
  Tensor t = NormalInit({100, 100}, 0.5f, &rng);
  double var = 0.0;
  for (int64_t i = 0; i < t.NumElements(); ++i)
    var += t.Data()[i] * t.Data()[i];
  var /= t.NumElements();
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.05);
}

// ---------------------------------------------------------------------------
// Linear / Embedding.

TEST(LinearTest, OutputShape) {
  util::Rng rng(5);
  Linear lin(6, 4, &rng);
  Tensor y = lin.Forward(TestTensor({3, 6}, 10, false));
  EXPECT_EQ(y.Dim(0), 3);
  EXPECT_EQ(y.Dim(1), 4);
}

TEST(LinearTest, NoBiasVariantHasOneParameter) {
  util::Rng rng(5);
  Linear lin(6, 4, &rng, /*with_bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
}

TEST(LinearTest, GradientFlowsToWeightAndBias) {
  util::Rng rng(6);
  Linear lin(3, 2, &rng);
  Tensor x = TestTensor({4, 3}, 20, false);
  tensor::Sum(lin.Forward(x)).Backward();
  for (const Tensor& p : lin.Parameters()) EXPECT_TRUE(p.HasGrad());
}

TEST(EmbeddingTest, ForwardGathersRows) {
  util::Rng rng(7);
  Embedding emb(5, 3, &rng);
  Tensor rows = emb.Forward({4, 0});
  EXPECT_EQ(rows.Dim(0), 2);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_EQ(rows.At(0, j), emb.table().At(4, j));
    EXPECT_EQ(rows.At(1, j), emb.table().At(0, j));
  }
}

// ---------------------------------------------------------------------------
// GRU cell.

TEST(GruCellTest, OutputShapeAndRange) {
  util::Rng rng(8);
  GruCell cell(6, 4, &rng);
  Tensor h = cell.Forward(TestTensor({5, 6}, 30, false),
                          TestTensor({5, 4}, 31, false));
  EXPECT_EQ(h.Dim(0), 5);
  EXPECT_EQ(h.Dim(1), 4);
}

TEST(GruCellTest, InterpolatesBetweenHiddenAndCandidate) {
  // h' = (1-z) n + z h is a convex combination, so with h in [-1, 1] the
  // output must stay in (-1, 1) (n is a tanh).
  util::Rng rng(9);
  GruCell cell(3, 3, &rng);
  Tensor h = cell.Forward(TestTensor({10, 3}, 33, false),
                          TestTensor({10, 3}, 34, false));
  for (int64_t i = 0; i < h.NumElements(); ++i) {
    EXPECT_LT(std::fabs(h.Data()[i]), 1.0f);
  }
}

TEST(GruCellTest, GradientChecks) {
  util::Rng rng(10);
  GruCell cell(3, 2, &rng);
  Tensor x = TestTensor({2, 3}, 40);
  Tensor h = TestTensor({2, 2}, 41);
  std::vector<Tensor> inputs = {x, h};
  for (const Tensor& p : cell.Parameters()) inputs.push_back(p);
  CheckGradients([&] { return tensor::Mean(cell.Forward(x, h)); }, inputs);
}

TEST(GruCellTest, DifferentInputAndHiddenSizes) {
  // The relation GRU of RE-GCN consumes 2d-wide inputs with d-wide state.
  util::Rng rng(11);
  GruCell cell(8, 4, &rng);
  Tensor h = cell.Forward(TestTensor({3, 8}, 42, false),
                          TestTensor({3, 4}, 43, false));
  EXPECT_EQ(h.Dim(1), 4);
}

// ---------------------------------------------------------------------------
// Projected-cell LSTM (the TIM cell, Sec. III-E).

TEST(ProjectedLstmTest, StateShapesMatchPaperDimensions) {
  // Eq. 8: input 2d, hidden d, cell 2d.
  const int64_t d = 5;
  util::Rng rng(12);
  ProjectedLstmCell cell(2 * d, d, 2 * d, &rng);
  Tensor x = TestTensor({7, 2 * d}, 50, false);
  ProjectedLstmCell::State s{TestTensor({7, d}, 51, false),
                             TestTensor({7, 2 * d}, 52, false)};
  auto next = cell.Forward(x, s);
  EXPECT_EQ(next.h.Dim(1), d);
  EXPECT_EQ(next.c.Dim(1), 2 * d);
}

TEST(ProjectedLstmTest, CellStateCanBeSeededWithInput) {
  // The paper sets C_0 = R_Mean^0: the cell state width equals the input
  // width, so the input tensor itself is a valid initial cell state.
  const int64_t d = 4;
  util::Rng rng(13);
  ProjectedLstmCell cell(2 * d, d, 2 * d, &rng);
  Tensor x = TestTensor({3, 2 * d}, 53, false);
  auto next = cell.Forward(x, {TestTensor({3, d}, 54, false), x});
  EXPECT_EQ(next.h.Dim(1), d);
}

TEST(ProjectedLstmTest, HiddenOutputBounded) {
  // h = o * tanh(W c) with o in (0,1) => |h| < 1.
  util::Rng rng(14);
  ProjectedLstmCell cell(4, 3, 4, &rng);
  Tensor x = tensor::Scale(TestTensor({6, 4}, 55, false), 10.0f);
  auto next =
      cell.Forward(x, {TestTensor({6, 3}, 56, false),
                       tensor::Scale(TestTensor({6, 4}, 57, false), 10.0f)});
  for (int64_t i = 0; i < next.h.NumElements(); ++i) {
    EXPECT_LT(std::fabs(next.h.Data()[i]), 1.0f);
  }
}

TEST(ProjectedLstmTest, GradientChecks) {
  util::Rng rng(15);
  ProjectedLstmCell cell(4, 2, 4, &rng);
  Tensor x = TestTensor({2, 4}, 58);
  Tensor h = TestTensor({2, 2}, 59);
  Tensor c = TestTensor({2, 4}, 60);
  std::vector<Tensor> inputs = {x, h, c};
  for (const Tensor& p : cell.Parameters()) inputs.push_back(p);
  CheckGradients(
      [&] {
        auto next = cell.Forward(x, {h, c});
        return tensor::Add(tensor::Mean(next.h), tensor::Mean(next.c));
      },
      inputs);
}

TEST(ProjectedLstmTest, ForgetGateCarriesCellState) {
  // Repeated steps with the same input converge the cell state (bounded by
  // the i*g increments); sanity-check no NaN/explosion over 50 steps.
  util::Rng rng(16);
  ProjectedLstmCell cell(4, 3, 4, &rng);
  Tensor x = TestTensor({2, 4}, 61, false);
  ProjectedLstmCell::State s{Tensor::Zeros({2, 3}), Tensor::Zeros({2, 4})};
  for (int i = 0; i < 50; ++i) s = cell.Forward(x, s);
  for (int64_t i = 0; i < s.c.NumElements(); ++i) {
    EXPECT_TRUE(std::isfinite(s.c.Data()[i]));
    EXPECT_LT(std::fabs(s.c.Data()[i]), 60.0f);
  }
}

// ---------------------------------------------------------------------------
// Adam.

TEST(AdamTest, MinimizesQuadratic) {
  // minimize (x - 3)^2 elementwise.
  Tensor x = Tensor::FromVector({1, 4}, {0, 10, -5, 3}, true);
  Adam opt({x}, Adam::Options{.lr = 0.1f});
  Tensor target = Tensor::FromVector({1, 4}, {3, 3, 3, 3});
  for (int step = 0; step < 500; ++step) {
    opt.ZeroGrad();
    Tensor diff = tensor::Sub(x, target);
    tensor::Sum(tensor::Mul(diff, diff)).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(x.Data()[i], 3.0f, 0.05f);
}

TEST(AdamTest, SkipsParametersWithoutGradient) {
  Tensor a = Tensor::FromVector({1}, {1.0f}, true);
  Tensor b = Tensor::FromVector({1}, {1.0f}, true);
  Adam opt({a, b}, Adam::Options{.lr = 0.1f});
  tensor::Sum(tensor::Scale(a, 2.0f)).Backward();
  opt.Step();
  EXPECT_NE(a.Data()[0], 1.0f);
  EXPECT_EQ(b.Data()[0], 1.0f);
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  Tensor x = Tensor::FromVector({1}, {5.0f}, true);
  Adam opt({x}, Adam::Options{.lr = 0.05f, .weight_decay = 1.0f});
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    // Zero data gradient; only weight decay acts.
    tensor::Sum(tensor::Scale(x, 0.0f)).Backward();
    opt.Step();
  }
  EXPECT_LT(std::fabs(x.Data()[0]), 0.5f);
}

TEST(AdamTest, LearningRateSetter) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Adam opt({x}, Adam::Options{.lr = 0.1f});
  opt.set_lr(0.5f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
}

// ---------------------------------------------------------------------------
// Gradient clipping.

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Tensor x = Tensor::FromVector({1, 2}, {1, 1}, true);
  tensor::Sum(tensor::Scale(x, 30.0f)).Backward();  // grad = (30, 30)
  std::vector<Tensor> params = {x};
  const float norm = ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(norm, 30.0f * std::sqrt(2.0f), 1e-3f);
  double clipped = 0.0;
  for (float g : x.Grad()) clipped += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-4);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::FromVector({1, 2}, {1, 1}, true);
  tensor::Sum(tensor::Scale(x, 0.1f)).Backward();
  std::vector<Tensor> params = {x};
  ClipGradNorm(params, 10.0f);
  EXPECT_NEAR(x.Grad()[0], 0.1f, 1e-6f);
}

// ---------------------------------------------------------------------------
// Parameterized: GRU gradient checks across size combinations.

class GruSizeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(GruSizeTest, GradientChecks) {
  const auto [in, hidden] = GetParam();
  util::Rng rng(17);
  GruCell cell(in, hidden, &rng);
  Tensor x = TestTensor({2, in}, 70 + in);
  Tensor h = TestTensor({2, hidden}, 71 + hidden);
  CheckGradients([&] { return tensor::Mean(cell.Forward(x, h)); }, {x, h});
}

INSTANTIATE_TEST_SUITE_P(Sizes, GruSizeTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                                           std::pair<int64_t, int64_t>{4, 4},
                                           std::pair<int64_t, int64_t>{8, 4},
                                           std::pair<int64_t, int64_t>{3, 7}));

}  // namespace
}  // namespace retia::nn
