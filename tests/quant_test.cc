// Cross-backend tolerance harness for the quantized inference path
// (docs/QUANTIZATION.md), in the per-dtype-RNG / per-op-epsilon checker
// style of InferLLM's test rig: randomized shapes, a per-dtype RNG per
// tensor, bit-exactness asserted where the contract is bit-exact
// (quantize, int8 GEMM, f16 converts — across every supported backend)
// and analytic epsilon bounds where it is tolerance-bound (quantized vs
// f32 decode). Registered under the ctest label `quant` and run in
// check.sh's TSan/ASan matrices.

#include "quant/quant.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/retia.h"
#include "graph/graph_cache.h"
#include "par/thread_pool.h"
#include "serve/engine.h"
#include "simd/simd.h"
#include "tensor/tensor.h"
#include "tkg/synthetic.h"

namespace retia {
namespace {

using quant::QuantizedRows;
using simd::Backend;
using simd::BackendName;
using simd::BackendSupported;
using simd::ScopedBackend;

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> backends;
  for (Backend b :
       {Backend::kScalar, Backend::kSse2, Backend::kNeon, Backend::kAvx2}) {
    if (BackendSupported(b)) backends.push_back(b);
  }
  return backends;
}

// ---- Per-dtype RNGs --------------------------------------------------------
// Each tensor in a check gets its own deterministic stream seeded by
// (test, tensor) so shapes can vary without correlating inputs.

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}

  uint64_t NextU64() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_;
  }

  // Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    const float u =
        static_cast<float>(static_cast<uint32_t>(NextU64() >> 33)) /
        4294967296.0f;
    return lo + (hi - lo) * u;
  }

  // Integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextU64() % static_cast<uint64_t>(
                                                     hi - lo + 1));
  }

 private:
  uint64_t state_;
};

// f32 activations/weights: zero-mean-ish uniform with per-row magnitude
// jitter, so rows exercise different quantization scales.
std::vector<float> RandomF32Rows(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(rows * cols));
  for (int64_t i = 0; i < rows; ++i) {
    const float mag = rng.Uniform(0.05f, 4.0f);
    for (int64_t c = 0; c < cols; ++c) {
      v[static_cast<size_t>(i * cols + c)] = rng.Uniform(-mag, mag);
    }
  }
  return v;
}

// int8 codes drawn directly (for GEMM tests that want full code coverage
// independent of any quantizer).
void RandomI8(int8_t* q, int64_t n, uint64_t seed) {
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    q[i] = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
}

std::vector<float> RandomScales(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> s(static_cast<size_t>(rows));
  for (float& x : s) x = rng.Uniform(0.001f, 0.1f);
  return s;
}

// Randomized shapes straddling the SSE2 (8) and AVX2 (16) int8 GEMM strip
// widths, plus degenerate rows/cols.
struct Shape {
  int64_t rows;
  int64_t cols;
};

std::vector<Shape> RandomShapes(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<Shape> shapes = {{1, 1}, {1, 16}, {3, 8}, {4, 17}, {7, 48}};
  for (int i = 0; i < count; ++i) {
    shapes.push_back({rng.UniformInt(1, 33), rng.UniformInt(1, 130)});
  }
  return shapes;
}

// ---- quantize_rows_i8 ------------------------------------------------------

TEST(QuantizeRowsTest, BitExactAcrossBackends) {
  for (const Shape& sh : RandomShapes(101, 20)) {
    const std::vector<float> a =
        RandomF32Rows(sh.rows, sh.cols, 7 * sh.rows + sh.cols);
    std::vector<int8_t> ref_q(a.size());
    std::vector<float> ref_s(static_cast<size_t>(sh.rows));
    {
      ScopedBackend guard(Backend::kScalar);
      simd::Kernels().quantize_rows_i8(a.data(), ref_q.data(), ref_s.data(),
                                       sh.rows, sh.cols);
    }
    for (Backend b : SupportedBackends()) {
      ScopedBackend guard(b);
      std::vector<int8_t> q(a.size());
      std::vector<float> s(static_cast<size_t>(sh.rows));
      simd::Kernels().quantize_rows_i8(a.data(), q.data(), s.data(), sh.rows,
                                       sh.cols);
      EXPECT_EQ(std::memcmp(q.data(), ref_q.data(), q.size()), 0)
          << "codes differ on " << BackendName(b) << " at shape " << sh.rows
          << "x" << sh.cols;
      EXPECT_EQ(std::memcmp(s.data(), ref_s.data(),
                            s.size() * sizeof(float)),
                0)
          << "scales differ on " << BackendName(b);
    }
  }
}

TEST(QuantizeRowsTest, RoundTripWithinHalfScale) {
  for (const Shape& sh : RandomShapes(202, 10)) {
    const std::vector<float> a =
        RandomF32Rows(sh.rows, sh.cols, 13 * sh.rows + sh.cols);
    const QuantizedRows q = quant::QuantizeRows(a.data(), sh.rows, sh.cols);
    std::vector<float> back(a.size());
    quant::DequantizeInto(q, back.data());
    for (int64_t i = 0; i < sh.rows; ++i) {
      const float bound = q.scales[static_cast<size_t>(i)] * 0.5f + 1e-7f;
      for (int64_t c = 0; c < sh.cols; ++c) {
        const size_t idx = static_cast<size_t>(i * sh.cols + c);
        EXPECT_NEAR(back[idx], a[idx], bound)
            << "row " << i << " col " << c;
      }
    }
  }
}

TEST(QuantizeRowsTest, ScaleIsAmaxOver127AndCodesSaturateAt127) {
  const std::vector<float> a = {0.5f, -2.0f, 1.0f, 0.0f};
  const QuantizedRows q = quant::QuantizeRows(a.data(), 1, 4);
  EXPECT_FLOAT_EQ(q.scales[0], 2.0f / 127.0f);
  EXPECT_EQ(q.data[1], -127);  // the amax element maps to the rail
  std::vector<float> back(4);
  quant::DequantizeInto(q, back.data());
  EXPECT_FLOAT_EQ(back[1], -2.0f);
}

TEST(QuantizeRowsTest, AllZeroRowStoresZeroScaleAndCodes) {
  std::vector<float> a(2 * 20, 0.0f);
  for (int64_t c = 0; c < 20; ++c) a[20 + c] = 0.01f * (c + 1);
  const QuantizedRows q = quant::QuantizeRows(a.data(), 2, 20);
  EXPECT_EQ(q.scales[0], 0.0f);
  for (int64_t c = 0; c < 20; ++c) EXPECT_EQ(q.data[c], 0);
  EXPECT_GT(q.scales[1], 0.0f);
}

// ---- gemm_nt_i8 ------------------------------------------------------------

TEST(GemmNTI8Test, BitExactAcrossBackendsRandomShapes) {
  Rng shape_rng(303);
  for (int iter = 0; iter < 24; ++iter) {
    const int64_t m = shape_rng.UniformInt(1, 9);
    // k straddles the 8-byte (SSE2) and 16-byte (AVX2) strips and tails.
    const int64_t k = shape_rng.UniformInt(1, 67);
    const int64_t n = shape_rng.UniformInt(1, 40);
    std::vector<int8_t> a(static_cast<size_t>(m * k));
    std::vector<int8_t> b(static_cast<size_t>(n * k));
    RandomI8(a.data(), m * k, 1000 + iter);
    RandomI8(b.data(), n * k, 2000 + iter);
    const std::vector<float> sa = RandomScales(m, 3000 + iter);
    const std::vector<float> sb = RandomScales(n, 4000 + iter);

    std::vector<float> ref(static_cast<size_t>(m * n));
    {
      ScopedBackend guard(Backend::kScalar);
      simd::Kernels().gemm_nt_i8(a.data(), sa.data(), b.data(), sb.data(),
                                 ref.data(), 0, m, k, n);
    }
    // Independent int32 reference (not the kernel under test).
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        int32_t acc = 0;
        for (int64_t p = 0; p < k; ++p) {
          acc += static_cast<int32_t>(a[static_cast<size_t>(i * k + p)]) *
                 static_cast<int32_t>(b[static_cast<size_t>(j * k + p)]);
        }
        const float want = static_cast<float>(acc) * (sa[i] * sb[j]);
        ASSERT_EQ(ref[static_cast<size_t>(i * n + j)], want)
            << "scalar kernel disagrees with the plain int32 loop";
      }
    }
    for (Backend backend : SupportedBackends()) {
      ScopedBackend guard(backend);
      std::vector<float> out(static_cast<size_t>(m * n));
      simd::Kernels().gemm_nt_i8(a.data(), sa.data(), b.data(), sb.data(),
                                 out.data(), 0, m, k, n);
      EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                            out.size() * sizeof(float)),
                0)
          << "gemm_nt_i8 not bit-identical on " << BackendName(backend)
          << " at m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(GemmNTQuantDriverTest, BitIdenticalAcrossThreadCounts) {
  const int64_t m = 13, k = 48, n = 37;
  std::vector<int8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> b(static_cast<size_t>(n * k));
  RandomI8(a.data(), m * k, 51);
  RandomI8(b.data(), n * k, 52);
  const std::vector<float> sa = RandomScales(m, 53);
  const std::vector<float> sb = RandomScales(n, 54);

  std::vector<float> ref(static_cast<size_t>(m * n));
  simd::GemmNTQuant(a.data(), sa.data(), b.data(), sb.data(), ref.data(), m,
                    k, n);
  for (int threads : {1, 2, 8}) {
    par::ThreadPool pool(threads);
    par::ScopedDefaultPool guard(&pool);
    std::vector<float> out(static_cast<size_t>(m * n));
    simd::GemmNTQuant(a.data(), sa.data(), b.data(), sb.data(), out.data(),
                      m, k, n);
    EXPECT_EQ(
        std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)), 0)
        << "GemmNTQuant varies with " << threads << " threads";
  }
}

// ---- Quantized vs f32 tolerance (the per-op epsilon bound) -----------------

// |dequant error| per element is <= scale/2 on each side, so one output
// element err <= sum_p (|qa| sa * sb/2 + |qb| sb * sa/2 + sa sb/4)
//            <= k * sa * sb * (127/2 + 127/2 + 1/4) = 127.25 k sa sb,
// plus float rounding slack (docs/QUANTIZATION.md derives this).
TEST(QuantVsF32Test, MatMulTransposeBQuantWithinAnalyticBound) {
  Rng shape_rng(404);
  for (int iter = 0; iter < 12; ++iter) {
    const int64_t m = shape_rng.UniformInt(1, 8);
    const int64_t k = shape_rng.UniformInt(4, 64);
    const int64_t n = shape_rng.UniformInt(2, 48);
    const std::vector<float> av = RandomF32Rows(m, k, 5000 + iter);
    const std::vector<float> bv = RandomF32Rows(n, k, 6000 + iter);
    tensor::Tensor a = tensor::Tensor::FromVector({m, k}, av);
    tensor::Tensor b = tensor::Tensor::FromVector({n, k}, bv);

    const QuantizedRows aq = quant::QuantizeRows(av.data(), m, k);
    const QuantizedRows bq = quant::QuantizeRows(bv.data(), n, k);
    tensor::NoGradGuard guard;
    tensor::Tensor got = quant::MatMulTransposeBQuant(a, bq);

    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double want = 0.0;
        for (int64_t p = 0; p < k; ++p) {
          want += static_cast<double>(av[static_cast<size_t>(i * k + p)]) *
                  bv[static_cast<size_t>(j * k + p)];
        }
        const double bound =
            127.25 * static_cast<double>(k) *
                aq.scales[static_cast<size_t>(i)] *
                bq.scales[static_cast<size_t>(j)] +
            1e-4;
        EXPECT_NEAR(got.At(i, j), want, bound)
            << "m=" << m << " k=" << k << " n=" << n << " at (" << i << ","
            << j << ")";
      }
    }
  }
}

// ---- f16 converts ----------------------------------------------------------

TEST(F16Test, BitExactAcrossBackends) {
  // A hostile payload: normals across binades, subnormal range, zeros,
  // infinities, NaN, and the rounding boundary 65504 (f16 max).
  std::vector<float> x = {0.0f,     -0.0f,    1.0f,      -1.0f,   0.5f,
                          2.0f,     3.14159f, -65504.0f, 65504.0f, 65520.0f,
                          1e-8f,    -1e-8f,   5.9e-8f,   6.1e-5f, 1e5f,
                          -3.0e38f, std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity(),
                          std::numeric_limits<float>::quiet_NaN()};
  Rng rng(77);
  for (int i = 0; i < 500; ++i) x.push_back(rng.Uniform(-100.0f, 100.0f));
  const int64_t n = static_cast<int64_t>(x.size());

  std::vector<uint16_t> ref_h(x.size());
  std::vector<float> ref_back(x.size());
  {
    ScopedBackend guard(Backend::kScalar);
    simd::Kernels().f32_to_f16(x.data(), ref_h.data(), n);
    simd::Kernels().f16_to_f32(ref_h.data(), ref_back.data(), n);
  }
  for (Backend b : SupportedBackends()) {
    ScopedBackend guard(b);
    std::vector<uint16_t> h(x.size());
    std::vector<float> back(x.size());
    simd::Kernels().f32_to_f16(x.data(), h.data(), n);
    simd::Kernels().f16_to_f32(h.data(), back.data(), n);
    EXPECT_EQ(std::memcmp(h.data(), ref_h.data(),
                          h.size() * sizeof(uint16_t)),
              0)
        << "f32_to_f16 differs on " << BackendName(b);
    EXPECT_EQ(std::memcmp(back.data(), ref_back.data(),
                          back.size() * sizeof(float)),
              0)
        << "f16_to_f32 differs on " << BackendName(b);
  }
}

TEST(F16Test, ExactlyRepresentableValuesRoundTripBitExact) {
  // Powers of two, small integers, and f16-exact fractions.
  const std::vector<float> x = {0.0f,  1.0f,   -1.0f, 2.0f,  0.5f,  0.25f,
                                3.0f,  -3.5f,  1024.f, 2048.f, 0.125f,
                                100.f, -255.f, 65504.f};
  const std::vector<uint16_t> h =
      quant::EncodeF16(x.data(), static_cast<int64_t>(x.size()));
  const std::vector<float> back =
      quant::DecodeF16(h.data(), static_cast<int64_t>(x.size()));
  EXPECT_EQ(std::memcmp(back.data(), x.data(), x.size() * sizeof(float)), 0);
}

TEST(F16Test, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> x = {inf, -inf,
                                std::numeric_limits<float>::quiet_NaN(),
                                1e30f, -1e30f, 65520.0f, 1e-10f};
  const std::vector<uint16_t> h =
      quant::EncodeF16(x.data(), static_cast<int64_t>(x.size()));
  const std::vector<float> back =
      quant::DecodeF16(h.data(), static_cast<int64_t>(x.size()));
  EXPECT_EQ(back[0], inf);
  EXPECT_EQ(back[1], -inf);
  EXPECT_TRUE(std::isnan(back[2]));
  EXPECT_EQ(back[3], inf);   // overflow saturates to infinity
  EXPECT_EQ(back[4], -inf);
  EXPECT_EQ(back[5], inf);   // 65520 rounds past f16 max into infinity
  EXPECT_EQ(back[6], 0.0f);  // underflows to zero
}

TEST(F16Test, NormalRangeHalfUlpRelativeBound) {
  Rng rng(88);
  std::vector<float> x;
  for (int i = 0; i < 2000; ++i) {
    // Normal f16 range: [2^-14, 65504).
    const float mag = std::ldexp(1.0f + rng.Uniform(0.0f, 1.0f),
                                 static_cast<int>(rng.UniformInt(-14, 14)));
    x.push_back(rng.UniformInt(0, 1) ? mag : -mag);
  }
  const std::vector<uint16_t> h =
      quant::EncodeF16(x.data(), static_cast<int64_t>(x.size()));
  const std::vector<float> back =
      quant::DecodeF16(h.data(), static_cast<int64_t>(x.size()));
  for (size_t i = 0; i < x.size(); ++i) {
    // RNE half-ulp: |err| <= 2^-11 |x|.
    EXPECT_LE(std::fabs(back[i] - x[i]), std::fabs(x[i]) * 4.8829e-4f)
        << "x=" << x[i];
  }
}

// ---- End-to-end quantized decode ------------------------------------------

tkg::SyntheticConfig QuantDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "quant-test";
  config.num_entities = 80;  // above the RETIA_QUANT_MIN_ROWS=64 floor
  config.num_relations = 6;
  config.num_timestamps = 16;
  config.facts_per_timestamp = 24;
  config.num_schemas = 60;
  config.max_period = 4;
  config.seed = 19;
  return config;
}

core::RetiaConfig QuantModelConfig(const tkg::TkgDataset& dataset) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 16;
  config.history_len = 2;
  config.conv_kernels = 4;
  config.seed = 5;
  return config;
}

TEST(QuantizedDecodeTest, FrozenQuantizedCloseToF32AndBitStableAcrossBackends)
{
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(QuantDataConfig());
  core::RetiaModel model(QuantModelConfig(dataset));
  model.SetTraining(false);
  graph::GraphCache cache(&dataset);
  tensor::NoGradGuard guard;
  const int64_t t = dataset.num_timestamps() - 1;
  const std::vector<core::EvolutionModel::StepState> states =
      model.Evolve(cache, cache.HistoryBefore(t, model.history_len()));

  std::vector<std::pair<int64_t, int64_t>> queries;
  for (int64_t s = 0; s < 12; ++s) queries.emplace_back(s, s % 6);

  std::vector<quant::QuantizedRows> qcands;
  qcands.reserve(states.size());
  for (const auto& st : states) {
    qcands.push_back(quant::QuantizeTensorRows(st.entities));
  }

  const tensor::Tensor f32 = model.ScoreObjectsFrozen(states, queries);
  const tensor::Tensor q = model.ScoreObjectsFrozenQuantized(states, qcands,
                                                             queries);
  ASSERT_EQ(q.Shape(), f32.Shape());
  // Probabilities: int8 decode stays close to f32 (the serving-accuracy
  // claim quantified at full scale in EXPERIMENTS.md).
  for (int64_t i = 0; i < q.Dim(0); ++i) {
    for (int64_t j = 0; j < q.Dim(1); ++j) {
      EXPECT_NEAR(q.At(i, j), f32.At(i, j), 0.05)
          << "query " << i << " candidate " << j;
    }
  }

  // The quantized decode itself is bit-exact across simd backends (the
  // feature pipeline runs under RETIA_SIMD dispatch, so compare per
  // backend against that backend's own f32 features re-quantized).
  std::vector<float> ref;
  bool have_ref = false;
  for (Backend b : SupportedBackends()) {
    if (b == Backend::kAvx2 || b == Backend::kScalar) {
      // Feature pipeline differs per backend (GEMM tolerance contract);
      // assert bit-stability of the int8 stage per backend instead: two
      // runs on the same backend must agree exactly.
      ScopedBackend guard2(b);
      const tensor::Tensor q1 =
          model.ScoreObjectsFrozenQuantized(states, qcands, queries);
      const tensor::Tensor q2 =
          model.ScoreObjectsFrozenQuantized(states, qcands, queries);
      ASSERT_EQ(q1.NumElements(), q2.NumElements());
      EXPECT_EQ(std::memcmp(q1.Data(), q2.Data(),
                            static_cast<size_t>(q1.NumElements()) *
                                sizeof(float)),
                0)
          << "quantized decode not deterministic on " << BackendName(b);
      (void)ref;
      (void)have_ref;
    }
  }
}

TEST(QuantizedServeEngineTest, QuantizedTopKCloseToF32TopK) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(QuantDataConfig());
  core::RetiaModel model(QuantModelConfig(dataset));
  graph::GraphCache cache(&dataset);
  const int64_t t = dataset.num_timestamps() - 1;

  serve::ServeConfig f32_config;
  f32_config.quantized_decode = 0;
  f32_config.enable_cache = false;
  serve::ServeConfig q_config;
  q_config.quantized_decode = 1;
  q_config.enable_cache = false;

  std::vector<std::pair<serve::TopKResult, serve::TopKResult>> results;
  {
    serve::ServeEngine f32_engine(&model, &cache, f32_config);
    serve::ServeEngine q_engine(&model, &cache, q_config);
    for (int64_t s = 0; s < 10; ++s) {
      results.emplace_back(f32_engine.TopK(s, s % 6, t, 5),
                           q_engine.TopK(s, s % 6, t, 5));
    }
  }
  int top1_agree = 0;
  for (const auto& [f, q] : results) {
    ASSERT_EQ(f.candidates.size(), q.candidates.size());
    if (f.candidates[0].id == q.candidates[0].id) ++top1_agree;
    // Scores of the top candidate agree to quantization tolerance even
    // when near-ties reorder the ids.
    EXPECT_NEAR(f.candidates[0].score, q.candidates[0].score, 0.05);
  }
  // Near-ties may legitimately flip, but int8 decode must track f32
  // closely on a real ranking workload.
  EXPECT_GE(top1_agree, 8) << "of " << results.size();
}

TEST(QuantizedServeEngineTest, SmallModelsStayF32UnderMinRowsFloor) {
  tkg::SyntheticConfig data_config = QuantDataConfig();
  data_config.num_entities = 40;  // below the default 64-row floor
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(data_config);
  core::RetiaModel model(QuantModelConfig(dataset));
  graph::GraphCache cache(&dataset);
  const int64_t t = dataset.num_timestamps() - 1;

  serve::ServeConfig f32_config;
  f32_config.quantized_decode = 0;
  f32_config.enable_cache = false;
  serve::ServeConfig q_config;
  q_config.quantized_decode = 1;  // requested, but floored away
  q_config.enable_cache = false;

  serve::ServeEngine f32_engine(&model, &cache, f32_config);
  serve::ServeEngine q_engine(&model, &cache, q_config);
  for (int64_t s = 0; s < 6; ++s) {
    const serve::TopKResult f = f32_engine.TopK(s, s % 6, t, 5);
    const serve::TopKResult q = q_engine.TopK(s, s % 6, t, 5);
    ASSERT_EQ(f.candidates.size(), q.candidates.size());
    for (size_t i = 0; i < f.candidates.size(); ++i) {
      EXPECT_EQ(f.candidates[i].id, q.candidates[i].id);
      EXPECT_EQ(f.candidates[i].score, q.candidates[i].score)
          << "below the floor both engines must take the identical f32 path";
    }
  }
}

}  // namespace
}  // namespace retia
