// Compile-out coverage for RETIA_OBS_DISABLE.
//
// This translation unit defines RETIA_OBS_DISABLE (via a per-target
// target_compile_definitions in tests/CMakeLists.txt) while linking the
// normally-built libraries, proving that instrumented call sites build and
// run with every RETIA_OBS_* macro expanded to nothing: no metric is
// registered, no trace event is recorded, and the direct obs API still
// works for code that wants it.

#ifndef RETIA_OBS_DISABLE
#error "obs_disabled_test must be compiled with RETIA_OBS_DISABLE defined"
#endif

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace retia::obs {
namespace {

TEST(ObsDisabledTest, MacrosCompileToNoOpsAndRegisterNothing) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  const std::vector<std::string> before = registry.Names();
  {
    RETIA_OBS_TIMED_SCOPE("obs_disabled.timed.us");
    RETIA_OBS_TRACE_SPAN("obs_disabled.span");
    RETIA_OBS_COUNTER_ADD("obs_disabled.counter", 1);
    RETIA_OBS_GAUGE_SET("obs_disabled.gauge", 1.0);
    RETIA_OBS_HIST_RECORD("obs_disabled.hist", 1);
  }
  const std::vector<std::string> after = registry.Names();
  EXPECT_EQ(before, after);
  for (const std::string& name : after) {
    EXPECT_EQ(name.rfind("obs_disabled.", 0), std::string::npos) << name;
  }
}

TEST(ObsDisabledTest, DisabledMacrosRecordNoTraceEvents) {
  Trace::Clear();
  Trace::Enable();
  {
    RETIA_OBS_TRACE_SPAN("obs_disabled.enabled_span");
    RETIA_OBS_TIMED_SCOPE("obs_disabled.enabled_timed.us");
  }
  Trace::Disable();
  EXPECT_EQ(Trace::EventCount(), 0);
  Trace::Clear();
}

TEST(ObsDisabledTest, DirectApiStillWorks) {
  // The compile-out removes the macros only; the library API remains for
  // code that manages metrics explicitly.
  Counter* counter =
      MetricsRegistry::Get().GetCounter("obs_disabled.direct_counter");
  counter->Add(3);
  EXPECT_EQ(counter->Value(), 3);
  counter->Reset();
}

}  // namespace
}  // namespace retia::obs
