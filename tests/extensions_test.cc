// Tests for the optional/extension features: parameter checkpointing,
// time-aware filtered evaluation, the cosine-hinge op and the static-graph
// constraint.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/retia.h"
#include "eval/evaluator.h"
#include "grad_check.h"
#include "graph/graph_cache.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "tensor/ops.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"

namespace retia {
namespace {

using tensor::Tensor;
using ::retia::testing::CheckGradients;
using ::retia::testing::TestTensor;

// ---------------------------------------------------------------------------
// Checkpointing.

class TwoLayer : public nn::Module {
 public:
  explicit TwoLayer(util::Rng* rng) : a_(4, 3, rng), b_(3, 2, rng) {
    RegisterModule("a", &a_);
    RegisterModule("b", &b_);
  }
  nn::Linear a_;
  nn::Linear b_;
};

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ckpt.bin";
  util::Rng rng(1);
  TwoLayer src(&rng);
  nn::SaveCheckpoint(src, path);

  util::Rng rng2(999);  // different init
  TwoLayer dst(&rng2);
  // Destination starts different.
  EXPECT_NE(src.a_.weight().Data()[0], dst.a_.weight().Data()[0]);
  nn::LoadCheckpoint(&dst, path);
  auto s = src.NamedParameters();
  auto d = dst.NamedParameters();
  ASSERT_EQ(s.size(), d.size());
  for (size_t i = 0; i < s.size(); ++i) {
    ASSERT_EQ(s[i].second.NumElements(), d[i].second.NumElements());
    for (int64_t j = 0; j < s[i].second.NumElements(); ++j) {
      ASSERT_EQ(s[i].second.Data()[j], d[i].second.Data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MismatchedModelDies) {
  const std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  util::Rng rng(2);
  TwoLayer src(&rng);
  nn::SaveCheckpoint(src, path);
  nn::Linear other(4, 3, &rng);
  EXPECT_DEATH(nn::LoadCheckpoint(&other, path), "parameters");
  std::remove(path.c_str());
}

TEST(CheckpointTest, GarbageFileDies) {
  const std::string path = ::testing::TempDir() + "/ckpt_garbage.bin";
  {
    std::ofstream out(path);
    out << "not a checkpoint";
  }
  util::Rng rng(3);
  TwoLayer m(&rng);
  EXPECT_DEATH(nn::LoadCheckpoint(&m, path), "not a RETIA checkpoint");
  std::remove(path.c_str());
}

TEST(CheckpointTest, RetiaModelRoundTripsAndScoresIdentically) {
  tkg::SyntheticConfig cfg;
  cfg.name = "ckpt";
  cfg.num_entities = 30;
  cfg.num_relations = 4;
  cfg.num_timestamps = 10;
  cfg.facts_per_timestamp = 10;
  cfg.num_schemas = 20;
  tkg::TkgDataset ds = tkg::GenerateSynthetic(cfg);
  core::RetiaConfig mc;
  mc.num_entities = ds.num_entities();
  mc.num_relations = ds.num_relations();
  mc.dim = 8;
  mc.conv_kernels = 4;
  core::RetiaModel a(mc);
  const std::string path = ::testing::TempDir() + "/retia.ckpt";
  nn::SaveCheckpoint(a, path);
  core::RetiaConfig mc2 = mc;
  mc2.seed = 123;
  core::RetiaModel b(mc2);
  nn::LoadCheckpoint(&b, path);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  a.SetTraining(false);
  b.SetTraining(false);
  Tensor pa = a.ScoreObjects(a.Evolve(cache, cache.HistoryBefore(5, 3)),
                             {{0, 1}});
  Tensor pb = b.ScoreObjects(b.Evolve(cache, cache.HistoryBefore(5, 3)),
                             {{0, 1}});
  for (int64_t j = 0; j < pa.NumElements(); ++j) {
    ASSERT_FLOAT_EQ(pa.Data()[j], pb.Data()[j]);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Time-aware filtered evaluation.

TEST(TimeAwareFilterTest, FiltersConflictingTrueObjects) {
  // Two facts with the same (s, r) at the test timestamp: under raw
  // evaluation the other true object outranks the target; under the
  // time-aware filter it is removed.
  std::vector<tkg::Quadruple> train = {{0, 0, 1, 0}};
  std::vector<tkg::Quadruple> test = {{0, 0, 1, 2}, {0, 0, 2, 2}};
  tkg::TkgDataset ds("filter", 4, 1, train, {{0, 0, 1, 1}}, test);
  // Scores rank entity 1 > 2 > others for every query.
  eval::ObjectScoreFn object_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& q) {
        Tensor scores = Tensor::Zeros({static_cast<int64_t>(q.size()), 4});
        for (size_t i = 0; i < q.size(); ++i) {
          scores.At(i, 1) = 2.0f;
          scores.At(i, 2) = 1.0f;
        }
        return scores;
      };
  eval::EvalOptions raw;
  raw.evaluate_relations = false;
  eval::EvalResult raw_result =
      eval::EvaluateTimes(ds, {2}, object_fn, nullptr, raw);
  eval::EvalOptions filtered = raw;
  filtered.time_aware_filter = true;
  eval::EvalResult filtered_result =
      eval::EvaluateTimes(ds, {2}, object_fn, nullptr, filtered);
  // The filter can only improve ranks.
  EXPECT_GE(filtered_result.entity.Mrr(), raw_result.entity.Mrr());
  // Query (0,0)->2: raw rank 2 (entity 1 scores higher); filtered rank 1
  // (entity 1 is another true object and is removed).
  EXPECT_LT(raw_result.entity.Hits1(), filtered_result.entity.Hits1());
}

TEST(TimeAwareFilterTest, NoConflictsMeansIdenticalMetrics) {
  std::vector<tkg::Quadruple> test = {{0, 0, 1, 2}, {2, 0, 3, 2}};
  tkg::TkgDataset ds("nofilter", 4, 1, {{0, 0, 1, 0}}, {{0, 0, 1, 1}}, test);
  eval::ObjectScoreFn object_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& q) {
        Tensor scores = Tensor::Zeros({static_cast<int64_t>(q.size()), 4});
        for (size_t i = 0; i < q.size(); ++i) scores.At(i, 0) = 1.0f;
        return scores;
      };
  eval::EvalOptions raw;
  raw.evaluate_relations = false;
  eval::EvalOptions filtered = raw;
  filtered.time_aware_filter = true;
  // Queries here have unique true answers per direction except the
  // inverse-direction duplicates; metrics must match exactly since each
  // (s, r) has one object.
  eval::EvalResult a = eval::EvaluateTimes(ds, {2}, object_fn, nullptr, raw);
  eval::EvalResult b =
      eval::EvaluateTimes(ds, {2}, object_fn, nullptr, filtered);
  EXPECT_DOUBLE_EQ(a.entity.Mrr(), b.entity.Mrr());
}

// ---------------------------------------------------------------------------
// CosineHingeLoss.

TEST(CosineHingeLossTest, AlignedRowsGiveZeroLoss) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 0, 0, 0, 2, 0});
  Tensor b = Tensor::FromVector({2, 3}, {3, 0, 0, 0, 5, 0});
  EXPECT_NEAR(tensor::CosineHingeLoss(a, b, 0.9f).Item(), 0.0f, 1e-5f);
}

TEST(CosineHingeLossTest, OrthogonalRowsPayTheThreshold) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 0});
  Tensor b = Tensor::FromVector({1, 2}, {0, 1});
  EXPECT_NEAR(tensor::CosineHingeLoss(a, b, 0.5f).Item(), 0.5f, 1e-5f);
}

TEST(CosineHingeLossTest, GradientChecks) {
  Tensor a = TestTensor({3, 4}, 101);
  Tensor b = TestTensor({3, 4}, 102);
  CheckGradients(
      [&] { return tensor::CosineHingeLoss(a, b, 0.95f); }, {a, b},
      /*eps=*/1e-3f, /*tolerance=*/5e-2f);
}

TEST(CosineHingeLossTest, MinimizationAlignsVectors) {
  Tensor a = TestTensor({4, 6}, 103);
  Tensor b = TestTensor({4, 6}, 104, /*requires_grad=*/false);
  nn::Adam opt({a}, nn::Adam::Options{.lr = 0.05f});
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    tensor::CosineHingeLoss(a, b, 0.99f).Backward();
    opt.Step();
  }
  EXPECT_LT(tensor::CosineHingeLoss(a, b, 0.99f).Item(), 0.02f);
}

// ---------------------------------------------------------------------------
// Static-graph constraint on the full model.

TEST(StaticConstraintTest, RequiresConfigFlag) {
  core::RetiaConfig mc;
  mc.num_entities = 10;
  mc.num_relations = 2;
  mc.dim = 8;
  mc.conv_kernels = 4;
  core::RetiaModel model(mc);
  EXPECT_DEATH(model.SetEntityTypes(std::vector<int64_t>(10, 0), 1),
               "use_static_constraint");
}

TEST(StaticConstraintTest, AddsToLossAndTrains) {
  tkg::SyntheticConfig cfg;
  cfg.name = "static";
  cfg.num_entities = 30;
  cfg.num_relations = 4;
  cfg.num_timestamps = 12;
  cfg.facts_per_timestamp = 10;
  cfg.num_schemas = 20;
  tkg::TkgDataset ds = tkg::GenerateSynthetic(cfg);
  graph::GraphCache cache(&ds);

  core::RetiaConfig mc;
  mc.num_entities = ds.num_entities();
  mc.num_relations = ds.num_relations();
  mc.dim = 8;
  mc.conv_kernels = 4;
  mc.use_static_constraint = true;
  mc.static_weight = 1.0f;
  core::RetiaModel with(mc);
  std::vector<int64_t> types(ds.num_entities());
  for (size_t e = 0; e < types.size(); ++e) types[e] = e % 4;
  with.SetEntityTypes(types, 4);

  core::RetiaConfig mc_plain = mc;
  mc_plain.use_static_constraint = false;
  core::RetiaModel without(mc_plain);

  auto states_with = with.Evolve(cache, cache.HistoryBefore(5, 3));
  auto states_without = without.Evolve(cache, cache.HistoryBefore(5, 3));
  auto loss_with = with.ComputeLoss(states_with, ds.FactsAt(5));
  auto loss_without = without.ComputeLoss(states_without, ds.FactsAt(5));
  // The constrained joint loss includes the extra hinge term: for freshly
  // initialized (hence misaligned) embeddings it must be strictly larger
  // than its own task losses alone.
  const float task_only = mc.lambda_entity * loss_with.entity_loss +
                          (1 - mc.lambda_entity) * loss_with.relation_loss;
  EXPECT_GT(loss_with.joint.Item(), task_only + 1e-4f);
  // And the plain model's joint equals its task combination.
  const float plain_task =
      mc.lambda_entity * loss_without.entity_loss +
      (1 - mc.lambda_entity) * loss_without.relation_loss;
  EXPECT_NEAR(loss_without.joint.Item(), plain_task, 1e-4f);
  // Backward must reach the static type embeddings.
  loss_with.joint.Backward();
  bool static_grad = false;
  for (const auto& [name, p] : with.NamedParameters()) {
    if (name.rfind("static_type_init", 0) == 0 && p.HasGrad()) {
      static_grad = true;
    }
  }
  EXPECT_TRUE(static_grad);
}

TEST(StaticConstraintTest, TrainerRunsWithConstraint) {
  tkg::SyntheticConfig cfg;
  cfg.name = "static-train";
  cfg.num_entities = 30;
  cfg.num_relations = 4;
  cfg.num_timestamps = 12;
  cfg.facts_per_timestamp = 10;
  cfg.num_schemas = 20;
  tkg::TkgDataset ds = tkg::GenerateSynthetic(cfg);
  graph::GraphCache cache(&ds);
  core::RetiaConfig mc;
  mc.num_entities = ds.num_entities();
  mc.num_relations = ds.num_relations();
  mc.dim = 8;
  mc.conv_kernels = 4;
  mc.use_static_constraint = true;
  core::RetiaModel model(mc);
  std::vector<int64_t> types(ds.num_entities());
  for (size_t e = 0; e < types.size(); ++e) types[e] = e % 3;
  model.SetEntityTypes(types, 3);
  train::TrainConfig tc;
  tc.max_epochs = 2;
  train::Trainer trainer(&model, &cache, tc);
  auto records = trainer.TrainGeneral();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[1].joint_loss, records[0].joint_loss * 1.5);
  eval::EvalResult r = trainer.Evaluate(ds.test_times(), false);
  EXPECT_GT(r.entity.Mrr(), 0.0);
}

}  // namespace
}  // namespace retia
