#ifndef RETIA_TESTS_GRAD_CHECK_H_
#define RETIA_TESTS_GRAD_CHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace retia::testing {

// Compares the autograd gradient of `fn` (a scalar-valued function of the
// given inputs) against central finite differences. Each input must have
// requires_grad set. `fn` is re-invoked for every perturbation, so it must
// be deterministic (no dropout/RRelu in training mode).
inline void CheckGradients(
    const std::function<tensor::Tensor()>& fn,
    std::vector<tensor::Tensor> inputs, float eps = 1e-3f,
    float tolerance = 2e-2f) {
  for (tensor::Tensor& input : inputs) {
    input.MutableGrad();
    input.ZeroGrad();
  }
  tensor::Tensor out = fn();
  ASSERT_EQ(out.NumElements(), 1) << "CheckGradients needs a scalar output";
  out.Backward();

  for (size_t which = 0; which < inputs.size(); ++which) {
    tensor::Tensor& input = inputs[which];
    const std::vector<float> analytic = input.Grad();
    const int64_t n = input.NumElements();
    for (int64_t i = 0; i < n; ++i) {
      const float saved = input.Data()[i];
      input.Data()[i] = saved + eps;
      const float up = fn().Item();
      input.Data()[i] = saved - eps;
      const float down = fn().Item();
      input.Data()[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float denom =
          std::max(1.0f, std::max(std::fabs(numeric), std::fabs(analytic[i])));
      EXPECT_NEAR(analytic[i] / denom, numeric / denom, tolerance)
          << "input " << which << " element " << i << " analytic "
          << analytic[i] << " numeric " << numeric;
    }
  }
}

// Deterministically filled tensor with values in roughly [-1, 1].
inline tensor::Tensor TestTensor(std::vector<int64_t> shape, uint64_t seed,
                                 bool requires_grad = true) {
  tensor::Tensor t = tensor::Tensor::Zeros(std::move(shape), requires_grad);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t.Data()[i] = static_cast<float>((state >> 33) % 2000) / 1000.0f - 1.0f;
  }
  return t;
}

}  // namespace retia::testing

#endif  // RETIA_TESTS_GRAD_CHECK_H_
