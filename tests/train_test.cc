#include <gtest/gtest.h>

#include "baselines/regcn.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"

namespace retia::train {
namespace {

tkg::TkgDataset SmallDataset() {
  tkg::SyntheticConfig c;
  c.name = "train-test";
  c.num_entities = 40;
  c.num_relations = 6;
  c.num_timestamps = 20;
  c.facts_per_timestamp = 15;
  c.num_schemas = 60;
  c.max_period = 3;
  c.repeat_prob = 0.9;
  c.noise_frac = 0.1;
  c.seed = 31;
  return tkg::GenerateSynthetic(c);
}

core::RetiaConfig SmallModelConfig(const tkg::TkgDataset& ds) {
  core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.history_len = 3;
  config.conv_kernels = 4;
  return config;
}

TEST(TrainerTest, LossDecreasesAcrossEpochs) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 4;
  config.patience = 10;
  Trainer trainer(&model, &cache, config);
  std::vector<EpochRecord> records = trainer.TrainGeneral();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_LT(records.back().joint_loss, records.front().joint_loss);
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 50;
  config.patience = 1;  // stop at the first non-improving epoch
  Trainer trainer(&model, &cache, config);
  std::vector<EpochRecord> records = trainer.TrainGeneral();
  EXPECT_LT(records.size(), 50u);
}

TEST(TrainerTest, EvaluateOfflineProducesMetrics) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 2;
  Trainer trainer(&model, &cache, config);
  trainer.TrainGeneral();
  eval::EvalResult r = trainer.Evaluate(ds.test_times(), /*online=*/false);
  EXPECT_GT(r.entity.count(), 0);
  EXPECT_GT(r.relation.count(), 0);
  EXPECT_GT(r.entity.Mrr(), 0.0);
  EXPECT_GT(r.predict_seconds, 0.0);
}

TEST(TrainerTest, OnlineEvaluationRunsAndKeepsMetricsFinite) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 2;
  config.online_steps = 1;
  Trainer trainer(&model, &cache, config);
  trainer.TrainGeneral();
  eval::EvalResult r = trainer.Evaluate(ds.test_times(), /*online=*/true);
  EXPECT_GT(r.entity.Mrr(), 0.0);
  EXPECT_LE(r.entity.Mrr(), 100.0);
}

TEST(TrainerTest, OnlineUpdatesChangeParameters) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 1;
  Trainer trainer(&model, &cache, config);
  trainer.TrainGeneral();
  const std::vector<float> before = model.Parameters()[0].impl().data;
  trainer.Evaluate(ds.test_times(), /*online=*/true);
  const std::vector<float>& after = model.Parameters()[0].impl().data;
  EXPECT_NE(before, after);
}

TEST(TrainerTest, OfflineEvaluationDoesNotChangeParameters) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 1;
  Trainer trainer(&model, &cache, config);
  trainer.TrainGeneral();
  const std::vector<float> before = model.Parameters()[0].impl().data;
  trainer.Evaluate(ds.test_times(), /*online=*/false);
  EXPECT_EQ(before, model.Parameters()[0].impl().data);
}

TEST(TrainerTest, WorksWithRegcnBaseline) {
  tkg::TkgDataset ds = SmallDataset();
  baselines::RegcnConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.history_len = 3;
  config.conv_kernels = 4;
  baselines::RegcnModel model(config);
  graph::GraphCache cache(&ds);
  TrainConfig tc;
  tc.max_epochs = 2;
  Trainer trainer(&model, &cache, tc);
  std::vector<EpochRecord> records = trainer.TrainGeneral();
  EXPECT_EQ(records.size(), 2u);
  eval::EvalResult r = trainer.Evaluate(ds.test_times(), /*online=*/false);
  EXPECT_GT(r.entity.Mrr(), 0.0);
}

TEST(TrainerTest, RecordsValidationMrrPerEpoch) {
  tkg::TkgDataset ds = SmallDataset();
  core::RetiaModel model(SmallModelConfig(ds));
  graph::GraphCache cache(&ds);
  TrainConfig config;
  config.max_epochs = 2;
  Trainer trainer(&model, &cache, config);
  for (const EpochRecord& rec : trainer.TrainGeneral()) {
    EXPECT_GT(rec.valid_entity_mrr, 0.0);
    EXPECT_GT(rec.entity_loss, 0.0);
    EXPECT_GT(rec.relation_loss, 0.0);
    EXPECT_GT(rec.seconds, 0.0);
  }
}

// Integration check of the paper's central claims on a dataset where
// relation structure matters: full RETIA must beat the "wo. RAM" ablation
// on relation forecasting after identical training budgets (Table VI).
TEST(TrainerIntegrationTest, RamAblationHurtsRelationForecasting) {
  tkg::TkgDataset ds = SmallDataset();
  graph::GraphCache cache(&ds);
  TrainConfig tc;
  tc.max_epochs = 6;
  tc.patience = 6;

  core::RetiaConfig full_config = SmallModelConfig(ds);
  core::RetiaModel full(full_config);
  Trainer full_trainer(&full, &cache, tc);
  full_trainer.TrainGeneral();
  eval::EvalResult full_result =
      full_trainer.Evaluate(ds.test_times(), /*online=*/false);

  core::RetiaConfig ablated_config = SmallModelConfig(ds);
  ablated_config.use_ram = false;
  core::RetiaModel ablated(ablated_config);
  Trainer ablated_trainer(&ablated, &cache, tc);
  ablated_trainer.TrainGeneral();
  eval::EvalResult ablated_result =
      ablated_trainer.Evaluate(ds.test_times(), /*online=*/false);

  EXPECT_GT(full_result.relation.Mrr(), ablated_result.relation.Mrr());
}

}  // namespace
}  // namespace retia::train
