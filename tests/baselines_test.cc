#include <cmath>

#include <gtest/gtest.h>

#include "baselines/cygnet.h"
#include "baselines/regcn.h"
#include "baselines/renet.h"
#include "baselines/static_models.h"
#include "baselines/tirgn.h"
#include "baselines/ttranse.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"

namespace retia::baselines {
namespace {

using tensor::Tensor;

tkg::TkgDataset TinyDataset() {
  tkg::SyntheticConfig c;
  c.name = "tiny";
  c.num_entities = 25;
  c.num_relations = 4;
  c.num_timestamps = 12;
  c.facts_per_timestamp = 10;
  c.num_schemas = 24;
  c.max_period = 3;
  c.repeat_prob = 0.9;
  c.noise_frac = 0.1;
  c.seed = 5;
  return tkg::GenerateSynthetic(c);
}

// ---------------------------------------------------------------------------
// StaticModel: every scorer produces well-formed scores and trains.

class StaticScorerTest : public ::testing::TestWithParam<StaticScorerKind> {};

TEST_P(StaticScorerTest, ObjectScoresWellFormed) {
  StaticModelConfig config;
  config.kind = GetParam();
  config.num_entities = 25;
  config.num_relations = 4;
  config.dim = 8;
  config.conv_kernels = 4;
  StaticModel model(config);
  model.SetTraining(false);
  Tensor scores = model.ScoreObjects({{0, 0}, {3, 5}});
  ASSERT_EQ(scores.Dim(0), 2);
  ASSERT_EQ(scores.Dim(1), 25);
  for (int64_t i = 0; i < scores.NumElements(); ++i) {
    EXPECT_TRUE(std::isfinite(scores.Data()[i]));
  }
}

TEST_P(StaticScorerTest, FitReducesTrainingLoss) {
  tkg::TkgDataset ds = TinyDataset();
  StaticModelConfig config;
  config.kind = GetParam();
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.conv_kernels = 4;
  StaticModel model(config);

  auto loss_on_train = [&] {
    tensor::NoGradGuard guard;
    model.SetTraining(false);
    std::vector<std::pair<int64_t, int64_t>> queries;
    std::vector<int64_t> targets;
    for (const tkg::Quadruple& q : ds.train()) {
      queries.emplace_back(q.subject, q.relation);
      targets.push_back(q.object);
    }
    return tensor::CrossEntropyLogits(model.ScoreObjects(queries), targets)
        .Item();
  };
  const float before = loss_on_train();
  model.Fit(ds, /*epochs=*/5, /*lr=*/5e-3f);
  const float after = loss_on_train();
  EXPECT_LT(after, before) << StaticScorerName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StaticScorerTest,
    ::testing::Values(StaticScorerKind::kDistMult, StaticScorerKind::kComplEx,
                      StaticScorerKind::kRotatE, StaticScorerKind::kTransE,
                      StaticScorerKind::kConvE,
                      StaticScorerKind::kConvTransE),
    [](const ::testing::TestParamInfo<StaticScorerKind>& info) {
      std::string name = StaticScorerName(info.param);
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(StaticModelTest, RelationScoresForSupportedKinds) {
  for (StaticScorerKind kind :
       {StaticScorerKind::kDistMult, StaticScorerKind::kComplEx,
        StaticScorerKind::kTransE, StaticScorerKind::kConvE,
        StaticScorerKind::kConvTransE}) {
    StaticModelConfig config;
    config.kind = kind;
    config.num_entities = 10;
    config.num_relations = 3;
    config.dim = 8;
    config.conv_kernels = 4;
    StaticModel model(config);
    model.SetTraining(false);
    Tensor scores = model.ScoreRelations({{0, 1}});
    EXPECT_EQ(scores.Dim(1), 3) << StaticScorerName(kind);
  }
}

TEST(StaticModelTest, RotatERelationScoringDies) {
  StaticModelConfig config;
  config.kind = StaticScorerKind::kRotatE;
  config.num_entities = 10;
  config.num_relations = 3;
  config.dim = 8;
  StaticModel model(config);
  EXPECT_DEATH(model.ScoreRelations({{0, 1}}), "RotatE");
}

TEST(StaticModelTest, OddDimDiesForComplexScorers) {
  StaticModelConfig config;
  config.kind = StaticScorerKind::kComplEx;
  config.num_entities = 10;
  config.num_relations = 3;
  config.dim = 7;
  EXPECT_DEATH(StaticModel model(config), "even embedding dim");
}

TEST(StaticModelTest, DistMultScoreMatchesManualTrilinear) {
  StaticModelConfig config;
  config.kind = StaticScorerKind::kDistMult;
  config.num_entities = 4;
  config.num_relations = 2;
  config.dim = 4;
  StaticModel model(config);
  model.SetTraining(false);
  Tensor scores = model.ScoreObjects({{1, 0}});
  // Manual: sum_k s[k] * r[k] * o[k] via parameter access.
  auto named = model.NamedParameters();
  Tensor ent, rel;
  for (auto& [name, t] : named) {
    if (name == "entities.table") ent = t;
    if (name == "relations.table") rel = t;
  }
  ASSERT_TRUE(ent.defined());
  for (int64_t o = 0; o < 4; ++o) {
    float expect = 0.0f;
    for (int64_t k = 0; k < 4; ++k)
      expect += ent.At(1, k) * rel.At(0, k) * ent.At(o, k);
    EXPECT_NEAR(scores.At(0, o), expect, 1e-5f);
  }
}

// ---------------------------------------------------------------------------
// TTransE.

TEST(TTransETest, ScoresClampFutureTimestamps) {
  tkg::TkgDataset ds = TinyDataset();
  TTransEModel model(ds.num_entities(), ds.num_relations(),
                     ds.num_timestamps(), 8);
  model.Fit(ds, /*epochs=*/1, /*lr=*/1e-3f);
  tensor::NoGradGuard guard;
  // A timestamp far beyond training must not crash (clamped embedding).
  Tensor scores = model.ScoreObjects(10'000, {{0, 0}});
  EXPECT_EQ(scores.Dim(1), ds.num_entities());
}

TEST(TTransETest, FitImprovesTrainRanking) {
  tkg::TkgDataset ds = TinyDataset();
  TTransEModel model(ds.num_entities(), ds.num_relations(),
                     ds.num_timestamps(), 12);
  auto mean_rank = [&] {
    tensor::NoGradGuard guard;
    double total = 0.0;
    int64_t n = 0;
    for (const tkg::Quadruple& q : ds.train()) {
      Tensor scores = model.ScoreObjects(q.time, {{q.subject, q.relation}});
      const float target = scores.At(0, q.object);
      int64_t rank = 1;
      for (int64_t j = 0; j < scores.Dim(1); ++j)
        if (scores.At(0, j) > target) ++rank;
      total += rank;
      ++n;
    }
    return total / n;
  };
  const double before = mean_rank();
  model.Fit(ds, /*epochs=*/10, /*lr=*/5e-3f);
  EXPECT_LT(mean_rank(), before);
}

// ---------------------------------------------------------------------------
// CyGNet.

TEST(CygnetTest, CopyProbsReflectHistoryCounts) {
  tkg::TkgDataset ds = TinyDataset();
  CygnetModel model(ds.num_entities(), ds.num_relations(), 8);
  model.ObserveUpTo(ds, 5);
  tensor::NoGradGuard guard;
  model.SetTraining(false);
  // Pick a fact that occurred before t=5 and check its object has mass.
  const tkg::Quadruple& q = ds.FactsAt(0)[0];
  Tensor p = model.ScoreObjects(5, {{q.subject, q.relation}});
  EXPECT_GT(p.At(0, q.object), 0.0f);
  // Probabilities are a valid mixture: rows sum to ~1 (copy rows with
  // history sum to 1; generation rows always do).
  double total = 0.0;
  for (int64_t j = 0; j < p.Dim(1); ++j) total += p.At(0, j);
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(CygnetTest, ScoreBeforeObservationDies) {
  tkg::TkgDataset ds = TinyDataset();
  CygnetModel model(ds.num_entities(), ds.num_relations(), 8);
  model.ObserveUpTo(ds, 2);
  EXPECT_DEATH(model.ScoreObjects(3, {{0, 0}}), "vocabulary");
}

TEST(CygnetTest, FitRuns) {
  tkg::TkgDataset ds = TinyDataset();
  CygnetModel model(ds.num_entities(), ds.num_relations(), 8);
  model.Fit(ds, /*epochs=*/2, /*lr=*/1e-3f);
  model.ObserveUpTo(ds, ds.num_timestamps());
  tensor::NoGradGuard guard;
  Tensor p = model.ScoreObjects(ds.num_timestamps(), {{0, 0}});
  EXPECT_EQ(p.Dim(1), ds.num_entities());
}

// ---------------------------------------------------------------------------
// RegcnModel (RE-GCN / RGCRN / CEN configurations).

RegcnConfig TinyRegcnConfig(const tkg::TkgDataset& ds) {
  RegcnConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.history_len = 3;
  config.conv_kernels = 4;
  return config;
}

TEST(RegcnTest, EvolveShapes) {
  tkg::TkgDataset ds = TinyDataset();
  RegcnModel model(TinyRegcnConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states.back().entities.Dim(0), ds.num_entities());
  EXPECT_EQ(states.back().relations.Dim(0), 2 * ds.num_relations());
}

TEST(RegcnTest, RgcrnKeepsRelationsStatic) {
  tkg::TkgDataset ds = TinyDataset();
  RegcnConfig config = TinyRegcnConfig(ds);
  config.evolve_relations = false;  // RGCRN
  RegcnModel model(config);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  // Relations identical across steps.
  for (size_t i = 1; i < states.size(); ++i) {
    for (int64_t j = 0; j < states[0].relations.NumElements(); ++j) {
      ASSERT_EQ(states[i].relations.Data()[j],
                states[0].relations.Data()[j]);
    }
  }
}

TEST(RegcnTest, RegcnEvolvesRelations) {
  tkg::TkgDataset ds = TinyDataset();
  RegcnModel model(TinyRegcnConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  float delta = 0.0f;
  for (int64_t j = 0; j < states[0].relations.NumElements(); ++j) {
    delta += std::fabs(states[1].relations.Data()[j] -
                       states[0].relations.Data()[j]);
  }
  EXPECT_GT(delta, 1e-4f);
}

TEST(RegcnTest, CenDecodingSumsOverHistory) {
  tkg::TkgDataset ds = TinyDataset();
  RegcnConfig config = TinyRegcnConfig(ds);
  config.time_variability_decode = true;  // CEN
  RegcnModel model(config);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  Tensor p = model.ScoreObjects(states, {{0, 0}});
  double total = 0.0;
  for (int64_t j = 0; j < p.Dim(1); ++j) total += p.At(0, j);
  EXPECT_NEAR(total, 3.0, 1e-3);  // k softmaxes summed
}

TEST(RegcnTest, RegcnDecodingUsesOnlyLastStep) {
  tkg::TkgDataset ds = TinyDataset();
  RegcnModel model(TinyRegcnConfig(ds));  // time_variability_decode=false
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  Tensor p = model.ScoreObjects(states, {{0, 0}});
  double total = 0.0;
  for (int64_t j = 0; j < p.Dim(1); ++j) total += p.At(0, j);
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(RegcnTest, LossBackwardTouchesAllParameters) {
  tkg::TkgDataset ds = TinyDataset();
  RegcnModel model(TinyRegcnConfig(ds));
  graph::GraphCache cache(&ds);
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  auto loss = model.ComputeLoss(states, ds.FactsAt(5));
  loss.joint.Backward();
  int64_t with_grad = 0;
  for (const Tensor& p : model.Parameters()) {
    if (p.HasGrad()) ++with_grad;
  }
  EXPECT_GT(with_grad, 0);
}

// ---------------------------------------------------------------------------
// RE-NET-lite.

RenetConfig TinyRenetConfig(const tkg::TkgDataset& ds) {
  RenetConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.history_len = 3;
  return config;
}

TEST(RenetTest, EvolveKeepsRelationsStatic) {
  tkg::TkgDataset ds = TinyDataset();
  RenetModel model(TinyRenetConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  ASSERT_EQ(states.size(), 3u);
  for (size_t i = 1; i < states.size(); ++i) {
    for (int64_t j = 0; j < states[0].relations.NumElements(); ++j) {
      ASSERT_EQ(states[i].relations.Data()[j],
                states[0].relations.Data()[j]);
    }
  }
}

TEST(RenetTest, EntitiesEvolveAcrossSteps) {
  tkg::TkgDataset ds = TinyDataset();
  RenetModel model(TinyRenetConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  float delta = 0.0f;
  for (int64_t j = 0; j < states[0].entities.NumElements(); ++j) {
    delta += std::fabs(states[1].entities.Data()[j] -
                       states[0].entities.Data()[j]);
  }
  EXPECT_GT(delta, 1e-4f);
}

TEST(RenetTest, ScoresAreDistributions) {
  tkg::TkgDataset ds = TinyDataset();
  RenetModel model(TinyRenetConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  tensor::Tensor p = model.ScoreObjects(states, {{0, 0}});
  double total = 0.0;
  for (int64_t j = 0; j < p.Dim(1); ++j) total += p.At(0, j);
  EXPECT_NEAR(total, 1.0, 1e-3);
  tensor::Tensor pr = model.ScoreRelations(states, {{0, 1}});
  EXPECT_EQ(pr.Dim(1), ds.num_relations());
}

TEST(RenetTest, TrainsViaTrainerInterface) {
  tkg::TkgDataset ds = TinyDataset();
  RenetModel model(TinyRenetConfig(ds));
  graph::GraphCache cache(&ds);
  train::TrainConfig tc;
  tc.max_epochs = 3;
  tc.patience = 5;
  train::Trainer trainer(&model, &cache, tc);
  auto records = trainer.TrainGeneral();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_LT(records.back().joint_loss, records.front().joint_loss);
}

// ---------------------------------------------------------------------------
// TiRGN (local-global).

TirgnConfig TinyTirgnConfig(const tkg::TkgDataset& ds) {
  TirgnConfig config;
  config.local.num_entities = ds.num_entities();
  config.local.num_relations = ds.num_relations();
  config.local.dim = 8;
  config.local.history_len = 3;
  config.local.conv_kernels = 4;
  return config;
}

TEST(TirgnTest, RequiresDatasetBeforeScoring) {
  tkg::TkgDataset ds = TinyDataset();
  TirgnModel model(TinyTirgnConfig(ds));
  graph::GraphCache cache(&ds);
  model.SetTraining(false);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  EXPECT_DEATH(model.ScoreObjects(states, {{0, 0}}), "SetDataset");
}

TEST(TirgnTest, MixtureStaysAValidDistributionFamily) {
  tkg::TkgDataset ds = TinyDataset();
  TirgnModel model(TinyTirgnConfig(ds));
  model.SetDataset(&ds);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, 3));
  tensor::Tensor p = model.ScoreObjects(states, {{0, 0}, {1, 2}});
  ASSERT_EQ(p.Dim(1), ds.num_entities());
  for (int64_t i = 0; i < p.Dim(0); ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < p.Dim(1); ++j) {
      EXPECT_GE(p.At(i, j), 0.0f);
      total += p.At(i, j);
    }
    // (1-a)*softmax + a*(copy or zero): total in [1-a, 1].
    EXPECT_LE(total, 1.0 + 1e-3);
    EXPECT_GE(total, 0.45);
  }
}

TEST(TirgnTest, GlobalIndexUsesOnlyThePast) {
  // A fact that exists only at a *future* timestamp must contribute no
  // global probability when evolving a history that ends before it.
  std::vector<tkg::Quadruple> train = {{0, 0, 1, 0}, {2, 1, 3, 1},
                                       {0, 0, 1, 2}};
  std::vector<tkg::Quadruple> valid = {{0, 0, 1, 3}};
  std::vector<tkg::Quadruple> test = {{0, 0, 4, 4}};
  tkg::TkgDataset ds("leak", 5, 2, train, valid, test);
  TirgnConfig config;
  config.local.num_entities = 5;
  config.local.num_relations = 2;
  config.local.dim = 8;
  config.local.history_len = 2;
  config.local.conv_kernels = 4;
  config.gate_init = 10.0f;  // gate ~1: output is (almost) purely global
  TirgnModel model(config);
  model.SetDataset(&ds);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(3, 2));
  tensor::Tensor p = model.ScoreObjects(states, {{0, 0}});
  // (0,0,4) only occurs at t=4 (the future): its global share must be ~0,
  // while (0,0,1) occurred twice in the past.
  EXPECT_GT(p.At(0, 1), 0.5f);
  EXPECT_LT(p.At(0, 4), 0.05f);
}

TEST(TirgnTest, TrainsViaTrainerInterface) {
  tkg::TkgDataset ds = TinyDataset();
  TirgnModel model(TinyTirgnConfig(ds));
  model.SetDataset(&ds);
  graph::GraphCache cache(&ds);
  train::TrainConfig tc;
  tc.max_epochs = 2;
  train::Trainer trainer(&model, &cache, tc);
  auto records = trainer.TrainGeneral();
  ASSERT_EQ(records.size(), 2u);
  eval::EvalResult r = trainer.Evaluate(ds.test_times(), false);
  EXPECT_GT(r.entity.Mrr(), 0.0);
}

TEST(TirgnTest, GlobalBranchBoostsRepeatedFacts) {
  tkg::TkgDataset ds = TinyDataset();
  TirgnConfig config = TinyTirgnConfig(ds);
  config.gate_init = 10.0f;  // essentially pure global
  TirgnModel model(config);
  model.SetDataset(&ds);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  // Find a fact repeated at least twice before t.
  const int64_t t = ds.train_times().back();
  auto states = model.Evolve(cache, cache.HistoryBefore(t, 3));
  const tkg::Quadruple& q = ds.FactsAt(0)[0];
  tensor::Tensor p = model.ScoreObjects(states, {{q.subject, q.relation}});
  EXPECT_GT(p.At(0, q.object), 0.0f);
}

}  // namespace
}  // namespace retia::baselines
