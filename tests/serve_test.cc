// Tests for the retia::serve subsystem: sharded LRU prediction cache,
// micro-batching engine (including bit-identical multi-threaded results),
// and frozen-model snapshot round-trips. Registered under the ctest label
// `serve` so `ctest -L serve` runs just these, typically in a
// -DRETIA_SANITIZE=thread build.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/result.h"
#include "core/retia.h"
#include "eval/metrics.h"
#include "graph/graph_cache.h"
#include "par/thread_pool.h"
#include "serve/engine.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"
#include "tkg/synthetic.h"

namespace retia {
namespace {

using serve::CacheCounters;
using serve::CacheKey;
using serve::PredictionCache;
using serve::QueryKind;
using serve::ScoredCandidate;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::TopKResult;

CacheKey EntityKey(int64_t t, int64_t s, int64_t r) {
  return {t, s, r, QueryKind::kEntity};
}

std::vector<ScoredCandidate> Value(int64_t id) { return {{id, 1.0f}}; }

TEST(PredictionCacheTest, LruEvictionOrderSingleShard) {
  PredictionCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put(EntityKey(0, 0, 0), Value(10));
  cache.Put(EntityKey(0, 1, 0), Value(11));
  cache.Put(EntityKey(0, 2, 0), Value(12));

  // Touch the oldest entry so it is most-recently-used again.
  std::vector<ScoredCandidate> out;
  ASSERT_TRUE(cache.Get(EntityKey(0, 0, 0), &out));
  EXPECT_EQ(out, Value(10));

  // Inserting a fourth entry must now evict (0,1,0), not (0,0,0).
  cache.Put(EntityKey(0, 3, 0), Value(13));
  EXPECT_FALSE(cache.Get(EntityKey(0, 1, 0), &out));
  EXPECT_TRUE(cache.Get(EntityKey(0, 0, 0), &out));
  EXPECT_TRUE(cache.Get(EntityKey(0, 2, 0), &out));
  EXPECT_TRUE(cache.Get(EntityKey(0, 3, 0), &out));

  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, 4);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.evictions, 1);
  EXPECT_EQ(counters.entries, 3);
}

TEST(PredictionCacheTest, OverwriteDoesNotEvict) {
  PredictionCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put(EntityKey(0, 0, 0), Value(1));
  cache.Put(EntityKey(0, 1, 0), Value(2));
  cache.Put(EntityKey(0, 0, 0), Value(3));  // overwrite, still 2 entries
  std::vector<ScoredCandidate> out;
  EXPECT_TRUE(cache.Get(EntityKey(0, 0, 0), &out));
  EXPECT_EQ(out, Value(3));
  EXPECT_TRUE(cache.Get(EntityKey(0, 1, 0), &out));
  EXPECT_EQ(cache.Counters().evictions, 0);
  EXPECT_EQ(cache.Counters().entries, 2);
}

TEST(PredictionCacheTest, ShardedCountersAggregate) {
  PredictionCache cache(/*capacity=*/64, /*num_shards=*/8);
  for (int64_t i = 0; i < 32; ++i) cache.Put(EntityKey(0, i, 0), Value(i));
  std::vector<ScoredCandidate> out;
  int64_t hits = 0;
  for (int64_t i = 0; i < 48; ++i) {
    if (cache.Get(EntityKey(0, i, 0), &out)) ++hits;
  }
  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits, hits);
  EXPECT_EQ(counters.hits, 32);
  EXPECT_EQ(counters.misses, 16);
  EXPECT_EQ(counters.entries, 32);
}

TEST(PredictionCacheTest, GenerationFenceDropsPutsThatRacedAClear) {
  PredictionCache cache(/*capacity=*/8, /*num_shards=*/1);
  std::vector<ScoredCandidate> out;

  // The engine's swap sequence: a decode samples the generation, a swap
  // Clear()s, and the decode's Put must then be a silent no-op.
  const uint64_t before = cache.generation();
  cache.Clear();
  EXPECT_EQ(cache.generation(), before + 1);
  cache.Put(EntityKey(0, 0, 0), Value(1), /*epoch=*/0, before);
  EXPECT_FALSE(cache.Get(EntityKey(0, 0, 0), &out));

  // A Put fenced on the *current* generation inserts normally...
  cache.Put(EntityKey(0, 0, 0), Value(2), /*epoch=*/1, cache.generation());
  int64_t epoch = -1;
  ASSERT_TRUE(cache.Get(EntityKey(0, 0, 0), &out, &epoch));
  EXPECT_EQ(out, Value(2));
  EXPECT_EQ(epoch, 1);

  // ...and a stale fence cannot overwrite an existing entry either.
  cache.Put(EntityKey(0, 0, 0), Value(3), /*epoch=*/0, before);
  ASSERT_TRUE(cache.Get(EntityKey(0, 0, 0), &out, &epoch));
  EXPECT_EQ(out, Value(2));
  EXPECT_EQ(epoch, 1);

  // Unfenced Puts (direct cache users) are unaffected by Clear history.
  cache.Put(EntityKey(0, 1, 0), Value(4));
  EXPECT_TRUE(cache.Get(EntityKey(0, 1, 0), &out));
}

TEST(PredictionCacheTest, ConcurrentMixedAccessKeepsCountsConsistent) {
  // Capacity comfortably above the 97 * 3 = 291-key working set even under
  // hash skew across the 8 shards (128 per shard).
  PredictionCache cache(/*capacity=*/1024, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int64_t kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (int thread_id = 0; thread_id < kThreads; ++thread_id) {
    threads.emplace_back([&cache, thread_id] {
      std::vector<ScoredCandidate> out;
      for (int64_t i = 0; i < kOpsPerThread; ++i) {
        const CacheKey key = EntityKey(0, i % 97, thread_id % 3);
        if (!cache.Get(key, &out)) cache.Put(key, Value(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.hits + counters.misses, kThreads * kOpsPerThread);
  EXPECT_EQ(counters.evictions, 0);  // working set fits
  EXPECT_LE(counters.entries, 97 * 3);
}

// ---- Engine fixtures --------------------------------------------------------

tkg::SyntheticConfig TinyDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "serve-test";
  config.num_entities = 40;
  config.num_relations = 6;
  config.num_timestamps = 20;
  config.facts_per_timestamp = 15;
  config.num_schemas = 60;
  config.max_period = 4;
  config.seed = 11;
  return config;
}

core::RetiaConfig TinyModelConfig(const tkg::TkgDataset& dataset) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 12;
  config.history_len = 2;
  config.conv_kernels = 4;
  config.seed = 3;
  return config;
}

// Reference decode: single-threaded frozen scoring straight through the
// model, no engine, no cache.
std::vector<std::vector<ScoredCandidate>> ReferenceTopK(
    core::RetiaModel* model, graph::GraphCache* cache, int64_t t,
    const std::vector<std::pair<int64_t, int64_t>>& queries, int64_t k) {
  model->SetTraining(false);
  tensor::NoGradGuard guard;
  const std::vector<core::EvolutionModel::StepState> states =
      model->Evolve(*cache, cache->HistoryBefore(t, model->history_len()));
  const tensor::Tensor scores = model->ScoreObjectsFrozen(states, queries);
  std::vector<std::vector<ScoredCandidate>> out;
  const int64_t n = scores.Dim(1);
  for (int64_t row = 0; row < scores.Dim(0); ++row) {
    const float* p = scores.Data() + row * n;
    std::vector<ScoredCandidate> ranked;
    for (int64_t id : eval::TopKIndices(p, n, k)) ranked.push_back({id, p[id]});
    out.push_back(std::move(ranked));
  }
  return out;
}

TEST(ServeEngineTest, ConcurrentTopKBitIdenticalToSingleThreaded) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();
  const int64_t k = 5;

  // Every (s, r) pair in both directions: 40 * 12 = 480 queries.
  std::vector<std::pair<int64_t, int64_t>> queries;
  for (int64_t s = 0; s < dataset.num_entities(); ++s) {
    for (int64_t r = 0; r < 2 * dataset.num_relations(); ++r) {
      queries.emplace_back(s, r);
    }
  }
  const std::vector<std::vector<ScoredCandidate>> reference =
      ReferenceTopK(&model, &graph_cache, t, queries, k);

  ServeConfig config;
  config.num_threads = 8;
  config.max_batch = 16;
  config.max_k = k;
  ServeEngine engine(&model, &graph_cache, config);
  engine.Warmup(t);

  // 8 client threads split the query list; every answer must be
  // bit-identical to the single-threaded reference.
  std::vector<std::vector<ScoredCandidate>> answers(queries.size());
  std::vector<std::thread> clients;
  constexpr int kClients = 8;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < queries.size(); i += kClients) {
        answers[i] =
            engine.TopK(queries[i].first, queries[i].second, t, k).candidates;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(answers[i].size(), reference[i].size()) << "query " << i;
    for (size_t j = 0; j < answers[i].size(); ++j) {
      EXPECT_EQ(answers[i][j].id, reference[i][j].id) << "query " << i;
      // Bit-identical, not approximately equal.
      EXPECT_EQ(answers[i][j].score, reference[i][j].score) << "query " << i;
    }
  }

  const serve::ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(queries.size()));
  EXPECT_GE(stats.batches, 1);
  EXPECT_GT(stats.qps, 0.0);
}

TEST(ServeEngineTest, OversubscribedPoolStaysBitIdenticalAndDeadlockFree) {
  // Many more client threads than pool workers: a 2-thread shared pool
  // (1 worker + participating callers) serves 12 concurrent clients. The
  // drain ticks run inline on client threads when no worker is free, so
  // nothing can deadlock, every query completes, and answers stay
  // bit-identical to the single-threaded reference.
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();
  const int64_t k = 4;

  std::vector<std::pair<int64_t, int64_t>> queries;
  for (int64_t s = 0; s < dataset.num_entities(); ++s) {
    for (int64_t r = 0; r < 2 * dataset.num_relations(); ++r) {
      queries.emplace_back(s, r);
    }
  }
  const std::vector<std::vector<ScoredCandidate>> reference =
      ReferenceTopK(&model, &graph_cache, t, queries, k);

  par::ThreadPool pool(2);  // declared before the engine: must outlive it
  ServeConfig config;
  config.num_threads = 2;
  config.pool = &pool;
  config.max_batch = 8;
  config.max_k = k;
  config.enable_cache = false;  // force every query through the queue
  ServeEngine engine(&model, &graph_cache, config);
  engine.Warmup(t);

  std::vector<std::vector<ScoredCandidate>> answers(queries.size());
  std::vector<std::thread> clients;
  constexpr int kClients = 12;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < queries.size(); i += kClients) {
        answers[i] =
            engine.TopK(queries[i].first, queries[i].second, t, k).candidates;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(answers[i].size(), reference[i].size()) << "query " << i;
    for (size_t j = 0; j < answers[i].size(); ++j) {
      EXPECT_EQ(answers[i][j].id, reference[i][j].id) << "query " << i;
      EXPECT_EQ(answers[i][j].score, reference[i][j].score) << "query " << i;
    }
  }
  const serve::ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(queries.size()));
}

TEST(ServeEngineTest, CacheHitsReturnIdenticalResults) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();

  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 4;
  ServeEngine engine(&model, &graph_cache, config);

  const TopKResult first = engine.TopK(1, 2, t, 4);
  EXPECT_FALSE(first.cache_hit);
  const TopKResult second = engine.TopK(1, 2, t, 4);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.candidates, second.candidates);

  // A smaller k is served from the cached prefix.
  const TopKResult prefix = engine.TopK(1, 2, t, 2);
  EXPECT_TRUE(prefix.cache_hit);
  ASSERT_EQ(prefix.candidates.size(), 2u);
  EXPECT_EQ(prefix.candidates[0], first.candidates[0]);
  EXPECT_EQ(prefix.candidates[1], first.candidates[1]);

  const serve::ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.cache.hits, 2);
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_GT(stats.cache_hit_rate, 0.5);
}

TEST(ServeEngineTest, RelationQueriesMatchFrozenScores) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();

  model.SetTraining(false);
  std::vector<std::vector<ScoredCandidate>> reference;
  {
    tensor::NoGradGuard guard;
    const auto states = model.Evolve(
        graph_cache, graph_cache.HistoryBefore(t, model.history_len()));
    std::vector<std::pair<int64_t, int64_t>> queries = {{0, 1}, {3, 7}};
    const tensor::Tensor scores = model.ScoreRelationsFrozen(states, queries);
    const int64_t m = scores.Dim(1);
    EXPECT_EQ(m, dataset.num_relations());
    for (int64_t row = 0; row < scores.Dim(0); ++row) {
      const float* p = scores.Data() + row * m;
      std::vector<ScoredCandidate> ranked;
      for (int64_t id : eval::TopKIndices(p, m, 3)) ranked.push_back({id, p[id]});
      reference.push_back(std::move(ranked));
    }
  }

  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 3;
  ServeEngine engine(&model, &graph_cache, config);
  EXPECT_EQ(engine.TopKRelation(0, 1, t, 3).candidates, reference[0]);
  EXPECT_EQ(engine.TopKRelation(3, 7, t, 3).candidates, reference[1]);
}

TEST(ServeEngineTest, MicroBatchingCoalescesQueuedQueries) {
  // Generic-scorer engine with one worker. The first decode blocks until
  // all remaining clients have submitted, so their queries must coalesce
  // into a single micro-batch afterwards.
  std::mutex mu;
  std::condition_variable cv;
  bool release_first_batch = false;
  std::atomic<int> calls{0};

  eval::ObjectScoreFn object_fn =
      [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& queries) {
        if (calls.fetch_add(1) == 0) {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return release_first_batch; });
        }
        // score(q, candidate) = a * 100 + b - candidate: deterministic.
        const int64_t n = 8;
        std::vector<float> data;
        for (const auto& [a, b] : queries) {
          for (int64_t id = 0; id < n; ++id) {
            data.push_back(static_cast<float>(a * 100 + b - id));
          }
        }
        return tensor::Tensor::FromVector(
            {static_cast<int64_t>(queries.size()), n}, std::move(data));
      };
  eval::RelationScoreFn relation_fn =
      [](int64_t, const std::vector<std::pair<int64_t, int64_t>>&) {
        return tensor::Tensor::Zeros({1, 1});
      };

  ServeConfig config;
  config.num_threads = 1;
  config.max_batch = 32;
  config.max_k = 1;
  config.enable_cache = false;
  ServeEngine engine(object_fn, relation_fn, config);

  constexpr int kClients = 8;
  std::atomic<int> submitted{0};
  std::vector<std::thread> clients;
  std::vector<TopKResult> results(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      submitted.fetch_add(1);
      results[c] = engine.TopK(c, 0, /*t=*/5, /*k=*/1);
    });
  }
  // Wait until every client has at least reached submission, give their
  // enqueues time to land, then release the blocked first batch.
  while (submitted.load() < kClients) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(mu);
    release_first_batch = true;
  }
  cv.notify_all();
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(results[c].candidates.size(), 1u);
    EXPECT_EQ(results[c].candidates[0].id, 0);  // candidate 0 always wins
    EXPECT_EQ(results[c].candidates[0].score, static_cast<float>(c * 100));
  }
  const serve::ServeStats stats = engine.Stats();
  EXPECT_EQ(stats.completed, kClients);
  // All clients blocked behind the first batch must have been answered in
  // far fewer decode ticks than requests (one big batch in the common case).
  EXPECT_LT(stats.batches, kClients);
  EXPECT_GT(stats.mean_batch_size, 1.0);
  EXPECT_FALSE(stats.ToJson().empty());
}

TEST(ServeSnapshotTest, RoundTripRestoresIdenticalTopK) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();

  const std::string prefix = testing::TempDir() + "/serve_snapshot";
  ASSERT_TRUE(serve::SaveModelSnapshot(model, prefix, dataset.name()).ok());

  std::string dataset_name;
  std::unique_ptr<core::RetiaModel> loaded;
  ckpt::Result r = serve::LoadModelSnapshot(prefix, &loaded, &dataset_name);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(dataset_name, dataset.name());
  EXPECT_FALSE(loaded->training());
  EXPECT_EQ(loaded->config().dim, model.config().dim);
  EXPECT_EQ(loaded->config().num_entities, model.config().num_entities);
  EXPECT_EQ(loaded->NumParameters(), model.NumParameters());

  std::vector<std::pair<int64_t, int64_t>> queries;
  for (int64_t s = 0; s < 10; ++s) queries.emplace_back(s, s % 12);
  const auto expected = ReferenceTopK(&model, &graph_cache, t, queries, 10);

  // The loaded model must produce identical rankings *and scores* through
  // a separate graph cache over the same dataset.
  graph::GraphCache loaded_cache(&dataset);
  const auto actual =
      ReferenceTopK(loaded.get(), &loaded_cache, t, queries, 10);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "query " << i;
  }
}

TEST(ServeSnapshotTest, StaticConstraintTableRoundTrips) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaConfig config = TinyModelConfig(dataset);
  config.use_static_constraint = true;
  core::RetiaModel model(config);
  std::vector<int64_t> types(dataset.num_entities());
  for (size_t i = 0; i < types.size(); ++i) types[i] = i % 5;
  model.SetEntityTypes(types, /*num_types=*/5);

  const std::string prefix = testing::TempDir() + "/serve_snapshot_static";
  ASSERT_TRUE(serve::SaveModelSnapshot(model, prefix, dataset.name()).ok());

  std::unique_ptr<core::RetiaModel> loaded;
  ckpt::Result r = serve::LoadModelSnapshot(prefix, &loaded);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_TRUE(loaded->has_entity_types());
  EXPECT_EQ(loaded->entity_types(), types);
  EXPECT_EQ(loaded->num_static_types(), 5);
  // The per-type embedding registered by SetEntityTypes must be part of
  // the round-trip, not a parameter-count mismatch.
  EXPECT_EQ(loaded->NumParameters(), model.NumParameters());
}

TEST(ServeSnapshotTest, LoadFailureIsReportedNotFatal) {
  std::unique_ptr<core::RetiaModel> loaded;
  ckpt::Result r =
      serve::LoadModelSnapshot(testing::TempDir() + "/no_such_prefix",
                               &loaded);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ckpt::ErrorCode::kIoError);
  EXPECT_EQ(loaded, nullptr);
}

// ---- Typed Query/Result API -------------------------------------------------

TEST(TypedApiTest, SubmitMatchesDeprecatedShims) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();

  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 4;
  ServeEngine engine(&model, &graph_cache, config);

  serve::Result<serve::QueryResult> typed =
      engine.Submit(serve::Query::Entity(1, 2, t, 4));
  ASSERT_TRUE(typed.ok()) << typed.ToString();
  EXPECT_EQ(typed.value().epoch, 0);
  EXPECT_EQ(typed.value().shard, -1);
  EXPECT_EQ(engine.TopK(1, 2, t, 4).candidates, typed.value().candidates);

  serve::Result<serve::QueryResult> relation =
      engine.Submit(serve::Query::Relation(3, 7, t, 3));
  ASSERT_TRUE(relation.ok()) << relation.ToString();
  EXPECT_EQ(engine.TopKRelation(3, 7, t, 3).candidates,
            relation.value().candidates);
}

TEST(TypedApiTest, MalformedQueriesAreReportedNotFatal) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();
  const int64_t n = dataset.num_entities();
  const int64_t m = dataset.num_relations();

  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 4;
  ServeEngine engine(&model, &graph_cache, config);

  auto code = [&engine](const serve::Query& query) {
    return engine.Submit(query).code();
  };
  using serve::Query;
  using serve::StatusCode;
  EXPECT_EQ(code(Query::Entity(0, 0, t, 0)), StatusCode::kInvalidArgument);
  EXPECT_EQ(code(Query::Entity(0, 0, t, 5)), StatusCode::kInvalidArgument);
  EXPECT_EQ(code(Query::Entity(0, 0, -1, 2)), StatusCode::kBadTimestamp);
  EXPECT_EQ(code(Query::Entity(n, 0, t, 2)), StatusCode::kUnknownEntity);
  EXPECT_EQ(code(Query::Entity(-1, 0, t, 2)), StatusCode::kUnknownEntity);
  EXPECT_EQ(code(Query::Entity(0, 2 * m, t, 2)), StatusCode::kUnknownRelation);
  EXPECT_EQ(code(Query::Relation(0, n, t, 2)), StatusCode::kUnknownEntity);
  EXPECT_EQ(code(Query::Relation(n, 0, t, 2)), StatusCode::kUnknownEntity);

  // Error details name the offending value.
  serve::Result<serve::QueryResult> error =
      engine.Submit(Query::Entity(n, 0, t, 2));
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.ToString().find("unknown_entity"), std::string::npos);

  // Valid queries still work after a burst of malformed ones, and t = 0
  // (empty history -> initial embeddings) is valid, not an error.
  EXPECT_TRUE(engine.Submit(Query::Entity(0, 0, t, 2)).ok());
  EXPECT_TRUE(engine.Submit(Query::Entity(0, 0, 0, 2)).ok());
}

TEST(TypedApiTest, CacheHitsCarryTheEpochThatProducedThem) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(TinyDataConfig());
  core::RetiaModel model(TinyModelConfig(dataset));
  graph::GraphCache graph_cache(&dataset);
  const int64_t t = dataset.test_times().front();

  ServeConfig config;
  config.num_threads = 2;
  config.max_k = 4;
  ServeEngine engine(&model, &graph_cache, config);

  serve::Result<serve::QueryResult> miss =
      engine.Submit(serve::Query::Entity(1, 2, t, 4));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().cache_hit);
  EXPECT_EQ(miss.value().epoch, 0);
  serve::Result<serve::QueryResult> hit =
      engine.Submit(serve::Query::Entity(1, 2, t, 4));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(hit.value().epoch, 0);
  EXPECT_EQ(hit.value().candidates, miss.value().candidates);
}

TEST(TopKIndicesTest, DeterministicTieBreakByLowerIndex) {
  const std::vector<float> scores = {1.0f, 3.0f, 3.0f, 2.0f, 0.5f};
  const std::vector<int64_t> top =
      eval::TopKIndices(scores.data(), scores.size(), 4);
  EXPECT_EQ(top, (std::vector<int64_t>{1, 2, 3, 0}));
  EXPECT_EQ(eval::TopKIndices(scores.data(), scores.size(), 99).size(), 5u);
}

}  // namespace
}  // namespace retia
