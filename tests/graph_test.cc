#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/graph_cache.h"
#include "graph/hypergraph.h"
#include "graph/subgraph.h"
#include "tkg/synthetic.h"

namespace retia::graph {
namespace {

using tkg::Quadruple;

// ---------------------------------------------------------------------------
// Subgraph.

TEST(SubgraphTest, AddsInverseEdges) {
  Subgraph g({{0, 1, 2, 0}}, /*num_entities=*/3, /*num_relations=*/4);
  ASSERT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.src()[0], 0);
  EXPECT_EQ(g.rel()[0], 1);
  EXPECT_EQ(g.dst()[0], 2);
  // Inverse: (o, r + M, s).
  EXPECT_EQ(g.src()[1], 2);
  EXPECT_EQ(g.rel()[1], 1 + 4);
  EXPECT_EQ(g.dst()[1], 0);
}

TEST(SubgraphTest, EdgeNormIsInverseOfPerDstRelInDegree) {
  // Two facts with the same (relation, object): c_{o,r} = 2.
  Subgraph g({{0, 0, 2, 0}, {1, 0, 2, 0}}, 3, 1);
  std::map<std::pair<int64_t, int64_t>, float> norm;
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    norm[{g.dst()[e], g.rel()[e]}] = g.edge_norm()[e];
  }
  const float norm_obj = norm[{2, 0}];  // two in-edges (0,0,2) and (1,0,2)
  const float norm_inv = norm[{0, 1}];  // single inverse edge
  EXPECT_FLOAT_EQ(norm_obj, 0.5f);
  EXPECT_FLOAT_EQ(norm_inv, 1.0f);
}

TEST(SubgraphTest, RelationEntitiesCoverBothDirectionsDeduplicated) {
  Subgraph g({{0, 0, 1, 0}, {1, 0, 2, 0}}, 3, 1);
  // Relation 0 touches entities {0, 1, 2}.
  EXPECT_EQ(g.relation_entities()[0], (std::vector<int64_t>{0, 1, 2}));
  // Inverse relation 1 mirrors the same incidence set.
  EXPECT_EQ(g.relation_entities()[1], (std::vector<int64_t>{0, 1, 2}));
}

TEST(SubgraphTest, ActiveRelationsOnlyListsPresentOnes) {
  Subgraph g({{0, 2, 1, 0}}, 3, 4);
  EXPECT_EQ(g.active_relations(), (std::vector<int64_t>{2, 6}));
}

TEST(SubgraphTest, EmptyFactListYieldsEmptyGraph) {
  Subgraph g({}, 3, 2);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.active_relations().empty());
}

// ---------------------------------------------------------------------------
// HyperSubgraph (Algorithm 1).

TEST(HypergraphTest, InverseHyperRelationPairsUp) {
  EXPECT_EQ(InverseHyperRelation(kObjectSubject), kObjectSubject + 4);
  EXPECT_EQ(InverseHyperRelation(kObjectSubject + 4), kObjectSubject);
  EXPECT_EQ(InverseHyperRelation(kSubjectSubject), kSubjectSubject + 4);
}

// Chain s --r0--> m --r1--> o: the object of r0 is the subject of r1.
TEST(HypergraphTest, ChainProducesObjectSubjectHyperedge) {
  Subgraph g({{0, 0, 1, 0}, {1, 1, 2, 0}}, 3, 2);
  HyperSubgraph hg(g);
  bool found = false;
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    if (hg.src()[e] == 0 && hg.hyper_rel()[e] == kObjectSubject &&
        hg.dst()[e] == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected (r0, o-s, r1) hyperedge";
}

// Two facts sharing an object o: (s0, r0, o), (s1, r1, o) -> (r0, o-o, r1).
TEST(HypergraphTest, SharedObjectProducesObjectObjectHyperedge) {
  Subgraph g({{0, 0, 2, 0}, {1, 1, 2, 0}}, 3, 2);
  HyperSubgraph hg(g);
  bool found = false;
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    if (hg.src()[e] == 0 && hg.hyper_rel()[e] == kObjectObject &&
        hg.dst()[e] == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Two facts sharing a subject: (s, r0, o0), (s, r1, o1) -> (r0, s-s, r1).
TEST(HypergraphTest, SharedSubjectProducesSubjectSubjectHyperedge) {
  Subgraph g({{0, 0, 1, 0}, {0, 1, 2, 0}}, 3, 2);
  HyperSubgraph hg(g);
  bool found = false;
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    if (hg.src()[e] == 0 && hg.hyper_rel()[e] == kSubjectSubject &&
        hg.dst()[e] == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Algorithm 1 zeroes the diagonals of the o-o and s-s products: a relation
// must never be its own o-o / s-s neighbour.
TEST(HypergraphTest, NoSelfPairsInSymmetricHyperrelations) {
  tkg::TkgDataset ds =
      tkg::GenerateSynthetic(tkg::SyntheticConfig::YagoLike());
  GraphCache cache(&ds);
  for (int64_t t : {0L, 1L, 2L}) {
    const HyperSubgraph& hg = cache.hypergraph(t);
    for (int64_t e = 0; e < hg.num_edges(); ++e) {
      const int64_t hr = hg.hyper_rel()[e];
      if (hr == kObjectObject || hr == kSubjectSubject ||
          hr == kObjectObject + 4 || hr == kSubjectSubject + 4) {
        EXPECT_NE(hg.src()[e], hg.dst()[e]) << "self pair via hr " << hr;
      }
    }
  }
}

// Every hyperedge must have its inverse hyperedge present (Sec. III-A).
TEST(HypergraphTest, ClosedUnderInverseHyperedges) {
  tkg::TkgDataset ds =
      tkg::GenerateSynthetic(tkg::SyntheticConfig::WikiLike());
  GraphCache cache(&ds);
  const HyperSubgraph& hg = cache.hypergraph(0);
  std::set<std::tuple<int64_t, int64_t, int64_t>> edges;
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    edges.insert({hg.src()[e], hg.hyper_rel()[e], hg.dst()[e]});
  }
  for (const auto& [s, hr, d] : edges) {
    EXPECT_TRUE(edges.count({d, InverseHyperRelation(hr), s}))
        << "missing inverse of (" << s << "," << hr << "," << d << ")";
  }
}

// Per-(dst, hr) norms sum to exactly 1 over the incoming hyperedges.
TEST(HypergraphTest, NormsSumToOnePerDstHyperrelation) {
  tkg::TkgDataset ds =
      tkg::GenerateSynthetic(tkg::SyntheticConfig::Icews14Like());
  GraphCache cache(&ds);
  const HyperSubgraph& hg = cache.hypergraph(0);
  std::map<std::pair<int64_t, int64_t>, double> sums;
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    sums[{hg.dst()[e], hg.hyper_rel()[e]}] += hg.edge_norm()[e];
  }
  for (const auto& [key, total] : sums) {
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
}

// Relation nodes mentioned by hyperedges must come from the augmented
// vocabulary of the base graph.
TEST(HypergraphTest, RelationNodesWithinAugmentedVocabulary) {
  tkg::TkgDataset ds =
      tkg::GenerateSynthetic(tkg::SyntheticConfig::Icews18Like());
  GraphCache cache(&ds);
  const HyperSubgraph& hg = cache.hypergraph(0);
  EXPECT_EQ(hg.num_relation_nodes(), 2 * ds.num_relations());
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    EXPECT_LT(hg.src()[e], hg.num_relation_nodes());
    EXPECT_LT(hg.dst()[e], hg.num_relation_nodes());
  }
}

TEST(HypergraphTest, EmptyBaseGraphYieldsEmptyHypergraph) {
  Subgraph g({}, 3, 2);
  HyperSubgraph hg(g);
  EXPECT_EQ(hg.num_edges(), 0);
}

// The motivating example of Fig. 1(b): two chained facts create message
// paths between the two relations in *both* directions via o-s and s-o.
TEST(HypergraphTest, MessageIslandsBridged) {
  Subgraph g({{0, 0, 1, 0}, {1, 1, 2, 0}}, 3, 2);
  HyperSubgraph hg(g);
  std::set<std::pair<int64_t, int64_t>> connected;  // (src, dst) rel pairs
  for (int64_t e = 0; e < hg.num_edges(); ++e) {
    connected.insert({hg.src()[e], hg.dst()[e]});
  }
  EXPECT_TRUE(connected.count({0, 1}));  // r0 -> r1
  EXPECT_TRUE(connected.count({1, 0}));  // r1 -> r0
}

// ---------------------------------------------------------------------------
// GraphCache.

TEST(GraphCacheTest, HistoryBeforeReturnsLatestK) {
  tkg::SyntheticConfig config = tkg::SyntheticConfig::YagoLike();
  tkg::TkgDataset ds = tkg::GenerateSynthetic(config);
  GraphCache cache(&ds);
  std::vector<int64_t> h = cache.HistoryBefore(10, 3);
  EXPECT_EQ(h, (std::vector<int64_t>{7, 8, 9}));
}

TEST(GraphCacheTest, HistoryTruncatedAtDatasetStart) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(tkg::SyntheticConfig::YagoLike());
  GraphCache cache(&ds);
  EXPECT_EQ(cache.HistoryBefore(1, 5), (std::vector<int64_t>{0}));
  EXPECT_TRUE(cache.HistoryBefore(0, 5).empty());
}

TEST(GraphCacheTest, SubgraphsAreCachedByIdentity) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(tkg::SyntheticConfig::YagoLike());
  GraphCache cache(&ds);
  const Subgraph& a = cache.subgraph(3);
  const Subgraph& b = cache.subgraph(3);
  EXPECT_EQ(&a, &b);
  const HyperSubgraph& ha = cache.hypergraph(3);
  const HyperSubgraph& hb = cache.hypergraph(3);
  EXPECT_EQ(&ha, &hb);
}

}  // namespace
}  // namespace retia::graph
