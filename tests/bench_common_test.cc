#include <filesystem>

#include <gtest/gtest.h>

#include "bench_common.h"

namespace retia::bench {
namespace {

class ResultsCacheTest : public ::testing::Test {
 protected:
  ResultsCacheTest()
      : dir_(::testing::TempDir() + "/retia_cache_test"), cache_(dir_) {}
  ~ResultsCacheTest() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  ResultsCache cache_;
};

RunResult SampleResult() {
  RunResult r;
  r.offline_entity_mrr = 41.5;
  r.offline_entity_h1 = 30.86;
  r.offline_entity_h3 = 46.6;
  r.offline_entity_h10 = 62.47;
  r.offline_relation_mrr = 41.06;
  r.online_entity_mrr = 45.29;
  r.online_entity_h1 = 34.6;
  r.online_entity_h3 = 50.88;
  r.online_entity_h10 = 66.06;
  r.online_relation_mrr = 42.05;
  r.train_seconds = 12.5;
  r.predict_seconds = 0.75;
  r.curve.push_back({2.5, 3.0, 1.2, 20.0, 1.5});
  r.curve.push_back({2.0, 2.4, 0.9, 25.0, 1.4});
  return r;
}

TEST_F(ResultsCacheTest, MissReturnsFalse) {
  RunResult r;
  EXPECT_FALSE(cache_.Load("nope", &r));
}

TEST_F(ResultsCacheTest, StoreLoadRoundTrip) {
  const RunResult in = SampleResult();
  cache_.Store("key1", in);
  RunResult out;
  ASSERT_TRUE(cache_.Load("key1", &out));
  EXPECT_DOUBLE_EQ(out.offline_entity_mrr, in.offline_entity_mrr);
  EXPECT_DOUBLE_EQ(out.online_relation_mrr, in.online_relation_mrr);
  EXPECT_DOUBLE_EQ(out.train_seconds, in.train_seconds);
  EXPECT_DOUBLE_EQ(out.predict_seconds, in.predict_seconds);
  ASSERT_EQ(out.curve.size(), 2u);
  EXPECT_DOUBLE_EQ(out.curve[1].joint_loss, 2.0);
  EXPECT_DOUBLE_EQ(out.curve[0].valid_entity_mrr, 20.0);
}

TEST_F(ResultsCacheTest, GetOrComputeInvokesOnceThenReuses) {
  int calls = 0;
  auto compute = [&] {
    ++calls;
    return SampleResult();
  };
  RunResult a = cache_.GetOrCompute("memo", compute);
  RunResult b = cache_.GetOrCompute("memo", compute);
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(a.online_entity_mrr, b.online_entity_mrr);
}

TEST_F(ResultsCacheTest, KeysAreSanitizedToFilenames) {
  cache_.Store("ICEWS05-15-like__static_Conv-TransE", SampleResult());
  RunResult out;
  EXPECT_TRUE(cache_.Load("ICEWS05-15-like__static_Conv-TransE", &out));
  // A key differing only in a sanitized character must not alias... the
  // sanitizer maps non-alphanumerics to '_', so verify the exact file name.
  EXPECT_TRUE(std::filesystem::exists(
      dir_ + "/ICEWS05-15-like__static_Conv-TransE.result"));
}

TEST(BenchParamsTest, HistoryLengthOrderingMatchesPaper) {
  // Paper: k(YAGO/WIKI) < k(ICEWS18) < k(ICEWS14/05-15).
  const int64_t yago = ParamsFor("YAGO-like").history_len;
  const int64_t wiki = ParamsFor("WIKI-like").history_len;
  const int64_t i18 = ParamsFor("ICEWS18-like").history_len;
  const int64_t i14 = ParamsFor("ICEWS14-like").history_len;
  const int64_t i0515 = ParamsFor("ICEWS05-15-like").history_len;
  EXPECT_EQ(yago, wiki);
  EXPECT_LT(yago, i18);
  EXPECT_LT(i18, i14);
  EXPECT_EQ(i14, i0515);
}

TEST(BenchProfilesTest, FiveProfilesInPaperOrder) {
  const auto profiles = AllProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "ICEWS14-like");
  EXPECT_EQ(profiles[1].name, "ICEWS05-15-like");
  EXPECT_EQ(profiles[2].name, "ICEWS18-like");
  EXPECT_EQ(profiles[3].name, "YAGO-like");
  EXPECT_EQ(profiles[4].name, "WIKI-like");
  EXPECT_EQ(IcewsProfiles().size(), 3u);
  EXPECT_EQ(YagoWikiProfiles().size(), 2u);
}

}  // namespace
}  // namespace retia::bench
