// Tests for retia::ckpt — the RETIACKPT2 artifact container, the typed
// section codecs, legacy v1 migration, trainer SaveState/ResumeState
// resume-exactness, and the retia::fail fault-injection hooks. Registered
// under the ctest label `ckpt` so `ctest -L ckpt` runs just these,
// typically in a -DRETIA_SANITIZE=address build (scripts/check.sh).

#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/ckpt.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"
#include "tkg/synthetic.h"
#include "train/trainer.h"
#include "util/fail.h"
#include "util/rng.h"

namespace retia {
namespace {

using ckpt::ArtifactReader;
using ckpt::ArtifactWriter;
using ckpt::ErrorCode;
using ckpt::Result;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// One-section artifact with known byte offsets, the corruption target:
//   [0,11)   magic "RETIACKPT2\n"
//   [11,15)  u32 version (= 2)
//   [15,19)  u32 section count (= 1)
//   [19,23)  u32 name length (= 1)
//   [23,24)  name "s"
//   [24,32)  u64 payload length (= 11)
//   [32,36)  u32 payload CRC
//   [36,47)  payload "hello world"
//   [47,51)  u32 file CRC
std::string OneSectionArtifact() {
  ArtifactWriter w;
  w.AddSection("s", "hello world");
  return w.Serialize();
}

// ---------------------------------------------------------------------------
// Corruption matrix: every class of damage maps to the right error code.

TEST(ArtifactCorruptionTest, IntactArtifactParses) {
  ArtifactReader reader;
  const Result r = ArtifactReader::Parse(OneSectionArtifact(), &reader);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_TRUE(reader.Has("s"));
  std::string_view payload;
  ASSERT_TRUE(reader.Section("s", &payload).ok());
  EXPECT_EQ(payload, "hello world");
}

TEST(ArtifactCorruptionTest, FlippedMagicIsBadMagic) {
  std::string bytes = OneSectionArtifact();
  bytes[0] ^= 0x20;
  ArtifactReader reader;
  EXPECT_EQ(ArtifactReader::Parse(bytes, &reader).code(),
            ErrorCode::kBadMagic);
}

TEST(ArtifactCorruptionTest, TruncationInsideMagicIsTruncated) {
  ArtifactReader reader;
  EXPECT_EQ(ArtifactReader::Parse(OneSectionArtifact().substr(0, 5),
                                  &reader).code(),
            ErrorCode::kTruncated);
  EXPECT_EQ(ArtifactReader::Parse("", &reader).code(), ErrorCode::kTruncated);
}

TEST(ArtifactCorruptionTest, WrongVersionIsBadVersion) {
  std::string bytes = OneSectionArtifact();
  bytes[11] = 9;
  ArtifactReader reader;
  const Result r = ArtifactReader::Parse(bytes, &reader);
  EXPECT_EQ(r.code(), ErrorCode::kBadVersion);
  EXPECT_NE(r.detail().find("version 9"), std::string::npos) << r.ToString();
}

TEST(ArtifactCorruptionTest, PayloadBitFlipIsCorruptNamingTheSection) {
  std::string bytes = OneSectionArtifact();
  bytes[40] ^= 0x01;  // inside "hello world"
  ArtifactReader reader;
  const Result r = ArtifactReader::Parse(bytes, &reader);
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);
  EXPECT_NE(r.detail().find("section 's'"), std::string::npos)
      << r.ToString();
}

TEST(ArtifactCorruptionTest, SectionCrcBitFlipIsCorrupt) {
  std::string bytes = OneSectionArtifact();
  bytes[33] ^= 0x01;  // inside the stored section CRC
  ArtifactReader reader;
  EXPECT_EQ(ArtifactReader::Parse(bytes, &reader).code(),
            ErrorCode::kCorrupt);
}

TEST(ArtifactCorruptionTest, FileCrcBitFlipIsCorrupt) {
  std::string bytes = OneSectionArtifact();
  bytes[bytes.size() - 1] ^= 0x01;
  ArtifactReader reader;
  const Result r = ArtifactReader::Parse(bytes, &reader);
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);
  EXPECT_NE(r.detail().find("file CRC"), std::string::npos) << r.ToString();
}

TEST(ArtifactCorruptionTest, TruncationInsidePayloadIsTruncated) {
  ArtifactReader reader;
  const Result r =
      ArtifactReader::Parse(OneSectionArtifact().substr(0, 45), &reader);
  EXPECT_EQ(r.code(), ErrorCode::kTruncated);
  EXPECT_NE(r.detail().find("'s'"), std::string::npos) << r.ToString();
}

TEST(ArtifactCorruptionTest, MissingFooterIsTruncated) {
  const std::string bytes = OneSectionArtifact();
  ArtifactReader reader;
  EXPECT_EQ(ArtifactReader::Parse(bytes.substr(0, bytes.size() - 2),
                                  &reader).code(),
            ErrorCode::kTruncated);
}

TEST(ArtifactCorruptionTest, TrailingBytesAreCorrupt) {
  ArtifactReader reader;
  EXPECT_EQ(ArtifactReader::Parse(OneSectionArtifact() + "x", &reader).code(),
            ErrorCode::kCorrupt);
}

TEST(ArtifactCorruptionTest, LegacyMagicsAreLegacyFormat) {
  ArtifactReader reader;
  EXPECT_EQ(ArtifactReader::Parse("RETIACKPT1\njunk", &reader).code(),
            ErrorCode::kLegacyFormat);
  EXPECT_EQ(ArtifactReader::Parse("RETIASIDE1\nkey\tvalue\n", &reader).code(),
            ErrorCode::kLegacyFormat);
}

TEST(ArtifactCorruptionTest, AbsentSectionIsMissingSection) {
  ArtifactReader reader;
  ASSERT_TRUE(ArtifactReader::Parse(OneSectionArtifact(), &reader).ok());
  std::string_view payload;
  EXPECT_EQ(reader.Section("nope", &payload).code(),
            ErrorCode::kMissingSection);
}

TEST(ArtifactCorruptionTest, EveryTruncationPointIsRejected) {
  const std::string bytes = OneSectionArtifact();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ArtifactReader reader;
    const Result r = ArtifactReader::Parse(bytes.substr(0, len), &reader);
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes parsed";
    EXPECT_NE(r.code(), ErrorCode::kLegacyFormat) << "at length " << len;
  }
}

TEST(ArtifactCorruptionTest, OpenPrefixesErrorsWithThePath) {
  const std::string path = TempPath("corrupt_prefix.ckpt");
  std::string bytes = OneSectionArtifact();
  bytes[40] ^= 0x01;
  ASSERT_TRUE(ckpt::WriteFileDurably(path, bytes).ok());
  ArtifactReader reader;
  const Result r = ArtifactReader::Open(path, &reader);
  EXPECT_EQ(r.code(), ErrorCode::kCorrupt);
  EXPECT_NE(r.detail().find(path), std::string::npos) << r.ToString();
}

// ---------------------------------------------------------------------------
// Round-trip property test over randomized module shapes.

class RandomModule : public nn::Module {
 public:
  RandomModule(uint64_t shape_seed, uint64_t init_seed) {
    util::Rng shapes(shape_seed);
    util::Rng init(init_seed);
    const int64_t num_layers = shapes.UniformInt(1, 4);
    for (int64_t i = 0; i < num_layers; ++i) {
      const int64_t in = shapes.UniformInt(1, 9);
      const int64_t out = shapes.UniformInt(1, 9);
      layers_.push_back(std::make_unique<nn::Linear>(in, out, &init));
      RegisterModule("layer" + std::to_string(i), layers_.back().get());
    }
  }

 private:
  std::vector<std::unique_ptr<nn::Linear>> layers_;
};

TEST(ArtifactRoundTripTest, RandomizedModuleShapesRoundTripBitExactly) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RandomModule src(seed, /*init_seed=*/seed + 100);
    const std::string path =
        TempPath("roundtrip_" + std::to_string(seed) + ".ckpt");
    ArtifactWriter writer;
    writer.AddSection(ckpt::kSectionParams, ckpt::EncodeParams(src));
    ASSERT_TRUE(writer.WriteFile(path).ok()) << "seed " << seed;

    // Same shapes, different initialization: every value must be replaced.
    RandomModule dst(seed, /*init_seed=*/seed + 999);
    ArtifactReader reader;
    ASSERT_TRUE(ArtifactReader::Open(path, &reader).ok()) << "seed " << seed;
    std::string_view payload;
    ASSERT_TRUE(reader.Section(ckpt::kSectionParams, &payload).ok());
    const Result r = ckpt::DecodeParamsInto(&dst, payload);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.ToString();

    auto s = src.NamedParameters();
    auto d = dst.NamedParameters();
    ASSERT_EQ(s.size(), d.size());
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i].second.impl().data, d[i].second.impl().data)
          << "seed " << seed << " parameter " << s[i].first;
    }
  }
}

TEST(ArtifactRoundTripTest, ShapeMismatchIsSchemaMismatchNamingParameter) {
  RandomModule src(3, 100);
  RandomModule other(7, 100);  // different shapes with high probability
  const std::string payload = ckpt::EncodeParams(src);
  const Result r = ckpt::DecodeParamsInto(&other, payload);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kSchemaMismatch);
}

// ---------------------------------------------------------------------------
// Typed section codecs.

TEST(SectionCodecTest, MetaRoundTripsAndRejectsTrailingBytes) {
  const ckpt::Meta meta = {{"a", "1"}, {"b", "two"}, {"empty", ""}};
  const std::string payload = ckpt::EncodeMeta(meta);
  ckpt::Meta out;
  ASSERT_TRUE(ckpt::DecodeMeta(payload, &out).ok());
  EXPECT_EQ(out, meta);
  EXPECT_EQ(ckpt::DecodeMeta(payload + "junk", &out).code(),
            ErrorCode::kCorrupt);
  EXPECT_EQ(ckpt::DecodeMeta(payload.substr(0, payload.size() - 1),
                             &out).code(),
            ErrorCode::kTruncated);
}

TEST(SectionCodecTest, RngStateRoundTripReplaysTheStream) {
  util::Rng src(1234);
  // Advance so the saved state is mid-stream, not the seed state.
  for (int i = 0; i < 57; ++i) src.Uniform(0.0f, 1.0f);
  const std::string payload = ckpt::EncodeRng(src);

  util::Rng dst(999);
  ASSERT_TRUE(ckpt::DecodeRngInto(&dst, payload).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(src.Uniform(0.0f, 1.0f), dst.Uniform(0.0f, 1.0f));
  }
}

TEST(SectionCodecTest, GarbageRngStateIsCorrupt) {
  ckpt::ByteWriter w;
  w.Str("not an engine state");
  util::Rng rng(1);
  EXPECT_EQ(ckpt::DecodeRngInto(&rng, w.bytes()).code(), ErrorCode::kCorrupt);
}

TEST(SectionCodecTest, AdamStateValidatesShapes) {
  util::Rng rng(5);
  nn::Linear a(4, 3, &rng), b(7, 2, &rng);
  nn::Adam opt_a(a.Parameters(), nn::Adam::Options{.lr = 1e-3f});
  const std::string payload = ckpt::EncodeAdam(opt_a);

  nn::Adam opt_a2(a.Parameters(), nn::Adam::Options{.lr = 1e-3f});
  EXPECT_TRUE(ckpt::DecodeAdamInto(&opt_a2, payload).ok());
  EXPECT_EQ(opt_a2.step_count(), opt_a.step_count());

  nn::Adam opt_b(b.Parameters(), nn::Adam::Options{.lr = 1e-3f});
  EXPECT_EQ(ckpt::DecodeAdamInto(&opt_b, payload).code(),
            ErrorCode::kSchemaMismatch);
}

// ---------------------------------------------------------------------------
// Model artifacts and legacy migration.

tkg::SyntheticConfig SmokeDataConfig() {
  tkg::SyntheticConfig config;
  config.name = "ckpt-test";
  config.num_entities = 40;
  config.num_relations = 6;
  config.num_timestamps = 12;
  config.facts_per_timestamp = 10;
  config.num_schemas = 40;
  config.seed = 17;
  return config;
}

core::RetiaConfig SmokeModelConfig(const tkg::TkgDataset& dataset) {
  core::RetiaConfig config;
  config.num_entities = dataset.num_entities();
  config.num_relations = dataset.num_relations();
  config.dim = 8;
  config.history_len = 2;
  config.conv_kernels = 2;
  config.dropout = 0.2f;  // training consumes the model RNG
  config.seed = 21;
  return config;
}

TEST(ModelArtifactTest, RoundTripRebuildsConfigAndParameters) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(SmokeModelConfig(dataset));
  const std::string path = TempPath("model_artifact.ckpt");
  ASSERT_TRUE(ckpt::SaveModelArtifact(model, path, dataset.name()).ok());

  std::unique_ptr<core::RetiaModel> loaded;
  std::string dataset_name;
  const Result r = ckpt::LoadModelArtifact(path, &loaded, &dataset_name);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(dataset_name, dataset.name());
  EXPECT_EQ(loaded->config().dim, model.config().dim);
  auto s = model.NamedParameters();
  auto d = loaded->NamedParameters();
  ASSERT_EQ(s.size(), d.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].second.impl().data, d[i].second.impl().data)
        << s[i].first;
  }
}

TEST(ModelArtifactTest, LegacySnapshotPairStillLoads) {
  // A pre-redesign snapshot: v1 parameter file + v1 sidecar, as the old
  // serve::SaveModelSnapshot wrote them.
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(SmokeModelConfig(dataset));
  const std::string prefix = TempPath("legacy_snapshot");
  ASSERT_TRUE(
      ckpt::WriteLegacyCheckpoint(model, prefix + ".ckpt").ok());
  ckpt::Sidecar sidecar = {{"format_version", "1"},
                           {"dataset_name", dataset.name()}};
  ckpt::AppendRetiaConfigMeta(model.config(), &sidecar);
  ASSERT_TRUE(ckpt::WriteLegacySidecar(prefix + ".meta", sidecar).ok());

  // The v2 loader reports kLegacyFormat rather than guessing...
  std::unique_ptr<core::RetiaModel> loaded;
  EXPECT_EQ(ckpt::LoadModelArtifact(prefix + ".ckpt", &loaded, nullptr)
                .code(),
            ErrorCode::kLegacyFormat);

  // ...and the legacy readers migrate the pair exactly.
  ckpt::Sidecar read_back;
  ASSERT_TRUE(ckpt::ReadLegacySidecar(prefix + ".meta", &read_back).ok());
  core::RetiaConfig config;
  ASSERT_TRUE(ckpt::RetiaConfigFromMeta(read_back, &config).ok());
  auto migrated = std::make_unique<core::RetiaModel>(config);
  ASSERT_TRUE(
      ckpt::ReadLegacyCheckpointInto(migrated.get(), prefix + ".ckpt").ok());
  auto s = model.NamedParameters();
  auto d = migrated->NamedParameters();
  ASSERT_EQ(s.size(), d.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].second.impl().data, d[i].second.impl().data);
  }
}

// ---------------------------------------------------------------------------
// Quantized artifacts (model.params.q8 / model.params.f16 sections,
// docs/QUANTIZATION.md).

// A model whose big matrices clear the QuantizesAsInt8 floor (inner size
// >= 16), so the q8 section carries real weight.
core::RetiaConfig QuantSmokeModelConfig(const tkg::TkgDataset& dataset) {
  core::RetiaConfig config = SmokeModelConfig(dataset);
  config.dim = 16;
  return config;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(QuantizedArtifactTest, RoundTripDequantizesWithinPerOpBounds) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(QuantSmokeModelConfig(dataset));
  const std::string path = TempPath("quant_artifact.ckpt");
  ASSERT_TRUE(ckpt::SaveQuantizedModelArtifact(model, path, dataset.name())
                  .ok());

  std::unique_ptr<core::RetiaModel> loaded;
  std::string dataset_name;
  const Result r = ckpt::LoadModelArtifact(path, &loaded, &dataset_name);
  ASSERT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(dataset_name, dataset.name());
  EXPECT_EQ(loaded->config().dim, model.config().dim);

  auto s = model.NamedParameters();
  auto d = loaded->NamedParameters();
  ASSERT_EQ(s.size(), d.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const auto& shape = s[i].second.impl().shape;
    const std::vector<float>& orig = s[i].second.impl().data;
    const std::vector<float>& back = d[i].second.impl().data;
    ASSERT_EQ(orig.size(), back.size()) << s[i].first;
    if (ckpt::QuantizesAsInt8(shape)) {
      // int8 rows: |err| <= scale / 2 = row_amax / 254 per element.
      const size_t cols = orig.size() / static_cast<size_t>(shape[0]);
      for (int64_t row = 0; row < shape[0]; ++row) {
        float amax = 0.0f;
        for (size_t c = 0; c < cols; ++c) {
          amax = std::max(amax, std::fabs(orig[row * cols + c]));
        }
        const float bound = amax / 254.0f + 1e-7f;
        for (size_t c = 0; c < cols; ++c) {
          const size_t idx = row * cols + c;
          ASSERT_NEAR(back[idx], orig[idx], bound)
              << s[i].first << " row " << row << " col " << c;
        }
      }
    } else {
      // f16: half-ulp relative for normals plus the subnormal absolute
      // floor (2^-25).
      for (size_t j = 0; j < orig.size(); ++j) {
        ASSERT_LE(std::fabs(back[j] - orig[j]),
                  std::fabs(orig[j]) * 4.8829e-4f + 3.0e-8f)
            << s[i].first << " [" << j << "]";
      }
    }
  }
}

TEST(QuantizedArtifactTest, QuantizedFileAtLeastHalvesSnapshotBytes) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(QuantSmokeModelConfig(dataset));
  const std::string f32_path = TempPath("size_f32.ckpt");
  const std::string q_path = TempPath("size_quant.ckpt");
  ASSERT_TRUE(ckpt::SaveModelArtifact(model, f32_path, dataset.name()).ok());
  ASSERT_TRUE(
      ckpt::SaveQuantizedModelArtifact(model, q_path, dataset.name()).ok());
  const auto f32_bytes = std::filesystem::file_size(f32_path);
  const auto q_bytes = std::filesystem::file_size(q_path);
  // The >= 2x snapshot-memory gate (docs/QUANTIZATION.md): enforced here
  // at test scale, re-measured at bench scale by bench_kernels.sh.
  EXPECT_GE(f32_bytes, 2 * q_bytes)
      << "f32 " << f32_bytes << "B vs quantized " << q_bytes << "B";
}

TEST(QuantizedArtifactTest, PayloadBitFlipsAreCorrupt) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(QuantSmokeModelConfig(dataset));
  const std::string path = TempPath("quant_corrupt.ckpt");
  ASSERT_TRUE(ckpt::SaveQuantizedModelArtifact(model, path, dataset.name())
                  .ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 1000u);
  // The q8/f16 payloads dominate the file, so flips at the quartile
  // offsets all land inside a section payload and must be caught by the
  // per-section CRC.
  for (const size_t at :
       {bytes.size() / 4, bytes.size() / 2, 3 * bytes.size() / 4}) {
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x20);
    ArtifactReader reader;
    EXPECT_EQ(ArtifactReader::Parse(damaged, &reader).code(),
              ErrorCode::kCorrupt)
        << "flip at offset " << at;
  }
}

TEST(QuantizedArtifactTest, TruncationSweepIsRejected) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(QuantSmokeModelConfig(dataset));
  const std::string path = TempPath("quant_trunc.ckpt");
  ASSERT_TRUE(ckpt::SaveQuantizedModelArtifact(model, path, dataset.name())
                  .ok());
  const std::string bytes = ReadFileBytes(path);
  // Dense sweep over the header/footer, strided through the payload bulk
  // (a full per-byte sweep is O(n^2) CRC work at this file size).
  std::vector<size_t> cuts;
  for (size_t i = 0; i < std::min<size_t>(64, bytes.size()); ++i) {
    cuts.push_back(i);
  }
  for (size_t i = 64; i + 64 < bytes.size(); i += 251) cuts.push_back(i);
  for (size_t i = bytes.size() - 64; i < bytes.size(); ++i) cuts.push_back(i);
  for (const size_t cut : cuts) {
    ArtifactReader reader;
    EXPECT_FALSE(ArtifactReader::Parse(bytes.substr(0, cut), &reader).ok())
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(QuantizedArtifactTest, MissingF16SectionReportsParamsMissing) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(QuantSmokeModelConfig(dataset));
  const std::string path = TempPath("quant_missing_f16.ckpt");
  ASSERT_TRUE(ckpt::SaveQuantizedModelArtifact(model, path, dataset.name())
                  .ok());
  ArtifactReader reader;
  ASSERT_TRUE(ArtifactReader::Open(path, &reader).ok());
  // Rebuild the artifact without the f16 half: a quantized artifact needs
  // BOTH dtype sections, so the loader reports the parameter payload
  // missing rather than silently zero-filling the f16-routed tensors.
  ArtifactWriter writer;
  for (const std::string& name : reader.SectionNames()) {
    if (name == ckpt::kSectionParamsF16) continue;
    std::string_view payload;
    ASSERT_TRUE(reader.Section(name, &payload).ok());
    writer.AddSection(name, std::string(payload));
  }
  const std::string half_path = TempPath("quant_missing_f16_half.ckpt");
  WriteFileBytes(half_path, writer.Serialize());
  std::unique_ptr<core::RetiaModel> loaded;
  EXPECT_EQ(ckpt::LoadModelArtifact(half_path, &loaded, nullptr).code(),
            ErrorCode::kMissingSection);
  EXPECT_EQ(loaded, nullptr);
}

TEST(QuantizedArtifactTest, QuantizedSnapshotServesCloseToF32Snapshot) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(QuantSmokeModelConfig(dataset));
  const std::string f32_prefix = TempPath("serve_f32_snap");
  const std::string q_prefix = TempPath("serve_quant_snap");
  ASSERT_TRUE(
      serve::SaveModelSnapshot(model, f32_prefix, dataset.name()).ok());
  ASSERT_TRUE(
      serve::SaveQuantizedModelSnapshot(model, q_prefix, dataset.name())
          .ok());

  // The f32 artifact still loads through the same dispatching loader
  // (pre-quantization snapshots stay readable), and the quantized one
  // serves scores within decode tolerance of it.
  std::unique_ptr<core::RetiaModel> f32_model;
  std::unique_ptr<core::RetiaModel> q_model;
  ASSERT_TRUE(serve::LoadModelSnapshot(f32_prefix, &f32_model).ok());
  ASSERT_TRUE(serve::LoadModelSnapshot(q_prefix, &q_model).ok());

  graph::GraphCache cache(&dataset);
  tensor::NoGradGuard guard;
  const int64_t t = dataset.num_timestamps() - 1;
  const std::vector<int64_t> history =
      cache.HistoryBefore(t, f32_model->history_len());
  std::vector<std::pair<int64_t, int64_t>> queries;
  for (int64_t s = 0; s < 8; ++s) queries.emplace_back(s, s % 6);
  const tensor::Tensor a =
      f32_model->ScoreObjectsFrozen(f32_model->Evolve(cache, history),
                                    queries);
  const tensor::Tensor b =
      q_model->ScoreObjectsFrozen(q_model->Evolve(cache, history), queries);
  ASSERT_EQ(a.Shape(), b.Shape());
  for (int64_t i = 0; i < a.Dim(0); ++i) {
    for (int64_t j = 0; j < a.Dim(1); ++j) {
      EXPECT_NEAR(a.At(i, j), b.At(i, j), 0.05) << "(" << i << "," << j
                                                << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Trainer SaveState / ResumeState.

TEST(TrainerResumeTest, InterruptedRunResumesBitIdentically) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  const std::string state_path = TempPath("trainer_state.ckpt");

  // Reference: 4 epochs uninterrupted, no checkpointing at all (saving
  // must have no effect on the trajectory).
  train::TrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 99;
  core::RetiaModel model_a(SmokeModelConfig(dataset));
  graph::GraphCache cache_a(&dataset);
  train::Trainer trainer_a(&model_a, &cache_a, tc);
  const std::vector<train::EpochRecord> records_a = trainer_a.TrainGeneral();
  ASSERT_EQ(records_a.size(), 4u);

  // Interrupted: 2 epochs with per-epoch state saves, then stop (as if
  // the process died during epoch 2).
  train::TrainConfig tc_half = tc;
  tc_half.max_epochs = 2;
  tc_half.checkpoint_path = state_path;
  core::RetiaModel model_b(SmokeModelConfig(dataset));
  graph::GraphCache cache_b(&dataset);
  train::Trainer trainer_b(&model_b, &cache_b, tc_half);
  trainer_b.TrainGeneral();

  // Resumed: a fresh process-equivalent — new model object, new trainer —
  // continues from the state file to the full 4 epochs.
  core::RetiaModel model_c(SmokeModelConfig(dataset));
  graph::GraphCache cache_c(&dataset);
  train::Trainer trainer_c(&model_c, &cache_c, tc);
  const Result resumed = trainer_c.ResumeState(state_path);
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  EXPECT_EQ(trainer_c.next_epoch(), 2);
  const std::vector<train::EpochRecord> records_c = trainer_c.TrainGeneral();

  // Records match exactly — losses and validation MRR are bit-identical;
  // `seconds` is wall clock and excluded.
  ASSERT_EQ(records_c.size(), records_a.size());
  for (size_t i = 0; i < records_a.size(); ++i) {
    EXPECT_EQ(records_a[i].joint_loss, records_c[i].joint_loss) << i;
    EXPECT_EQ(records_a[i].entity_loss, records_c[i].entity_loss) << i;
    EXPECT_EQ(records_a[i].relation_loss, records_c[i].relation_loss) << i;
    EXPECT_EQ(records_a[i].valid_entity_mrr, records_c[i].valid_entity_mrr)
        << i;
  }

  // Final (best-validation-restored) parameters are bit-identical.
  auto pa = model_a.NamedParameters();
  auto pc = model_c.NamedParameters();
  ASSERT_EQ(pa.size(), pc.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second.impl().data, pc[i].second.impl().data)
        << pa[i].first;
  }
}

TEST(TrainerResumeTest, MissingStateFileIsIoError) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(SmokeModelConfig(dataset));
  graph::GraphCache cache(&dataset);
  train::Trainer trainer(&model, &cache, {});
  EXPECT_EQ(trainer.ResumeState(TempPath("no_such_state.ckpt")).code(),
            ErrorCode::kIoError);
}

TEST(TrainerResumeTest, ModelArtifactIsRejectedAsSchemaMismatch) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  core::RetiaModel model(SmokeModelConfig(dataset));
  const std::string path = TempPath("not_a_trainer_state.ckpt");
  ASSERT_TRUE(ckpt::SaveModelArtifact(model, path, dataset.name()).ok());

  graph::GraphCache cache(&dataset);
  train::Trainer trainer(&model, &cache, {});
  const Result r = trainer.ResumeState(path);
  EXPECT_EQ(r.code(), ErrorCode::kSchemaMismatch);
}

TEST(TrainerResumeTest, ArchitectureMismatchLeavesTrainerUsable) {
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(SmokeDataConfig());
  const std::string state_path = TempPath("trainer_state_mismatch.ckpt");
  core::RetiaModel model(SmokeModelConfig(dataset));
  graph::GraphCache cache(&dataset);
  train::TrainConfig tc;
  tc.max_epochs = 1;
  tc.patience = 99;
  train::Trainer trainer(&model, &cache, tc);
  trainer.TrainGeneral();
  ASSERT_TRUE(trainer.SaveState(state_path).ok());

  core::RetiaConfig other_config = SmokeModelConfig(dataset);
  other_config.dim = 12;  // different architecture
  core::RetiaModel other(other_config);
  graph::GraphCache other_cache(&dataset);
  train::Trainer other_trainer(&other, &other_cache, tc);
  EXPECT_EQ(other_trainer.ResumeState(state_path).code(),
            ErrorCode::kSchemaMismatch);
  // The mismatch was detected before any state mutation.
  EXPECT_EQ(other_trainer.next_epoch(), 0);
}

// ---------------------------------------------------------------------------
// Fault injection through retia::fail.

class FailPlanTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::Clear(); }
};

TEST_F(FailPlanTest, FailedWritePreservesOldArtifactAndLeavesNoTmp) {
  const std::string path = TempPath("fail_write.ckpt");
  ArtifactWriter old_writer;
  old_writer.AddSection("s", "old contents");
  ASSERT_TRUE(old_writer.WriteFile(path).ok());

  fail::InstallPlan({.fail_write_n = 1});
  ArtifactWriter new_writer;
  new_writer.AddSection("s", "new contents");
  const Result r = new_writer.WriteFile(path);
  EXPECT_EQ(r.code(), ErrorCode::kIoError);
  EXPECT_NE(r.detail().find("injected"), std::string::npos) << r.ToString();
  fail::Clear();

  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  ArtifactReader reader;
  ASSERT_TRUE(ArtifactReader::Open(path, &reader).ok());
  std::string_view payload;
  ASSERT_TRUE(reader.Section("s", &payload).ok());
  EXPECT_EQ(payload, "old contents");
}

TEST_F(FailPlanTest, TruncatedCloseNeverPublishesALoadableArtifact) {
  const std::string bytes = OneSectionArtifact();
  for (size_t keep = 0; keep < bytes.size(); keep += 3) {
    const std::string path =
        TempPath("fail_truncate_" + std::to_string(keep) + ".ckpt");
    fail::InstallPlan({.truncate_on_close = static_cast<int64_t>(keep)});
    ArtifactWriter writer;
    writer.AddSection("s", "hello world");
    // The torn write itself "succeeds" — the filesystem lied.
    ASSERT_TRUE(writer.WriteFile(path).ok()) << "keep=" << keep;
    fail::Clear();

    ArtifactReader reader;
    const Result r = ArtifactReader::Open(path, &reader);
    EXPECT_FALSE(r.ok()) << "torn file of " << keep << " bytes loaded";
  }
}

TEST_F(FailPlanTest, SigkillAfterRenameLeavesAValidArtifact) {
  const std::string path = TempPath("crash_after_rename.ckpt");
  EXPECT_EXIT(
      {
        fail::InstallPlan({.crash_after_rename_n = 1});
        ArtifactWriter writer;
        writer.AddSection("s", "survived the crash");
        static_cast<void>(writer.WriteFile(path));
      },
      ::testing::KilledBySignal(SIGKILL), "");

  // The child died right after the commit rename; the artifact it
  // published must be complete and valid.
  ArtifactReader reader;
  const Result r = ArtifactReader::Open(path, &reader);
  ASSERT_TRUE(r.ok()) << r.ToString();
  std::string_view payload;
  ASSERT_TRUE(reader.Section("s", &payload).ok());
  EXPECT_EQ(payload, "survived the crash");
}

TEST_F(FailPlanTest, PlanParsesFromEnvironment) {
  ::setenv("RETIA_FAIL_WRITE_N", "3", 1);
  ::setenv("RETIA_FAIL_TRUNCATE", "17", 1);
  ::setenv("RETIA_FAIL_CRASH_AFTER_RENAME", "2", 1);
  const fail::Plan plan = fail::ReadPlanFromEnv();
  EXPECT_EQ(plan.fail_write_n, 3);
  EXPECT_EQ(plan.truncate_on_close, 17);
  EXPECT_EQ(plan.crash_after_rename_n, 2);

  ::setenv("RETIA_FAIL_WRITE_N", "junk", 1);
  ::unsetenv("RETIA_FAIL_TRUNCATE");
  ::unsetenv("RETIA_FAIL_CRASH_AFTER_RENAME");
  const fail::Plan fallback = fail::ReadPlanFromEnv();
  EXPECT_EQ(fallback.fail_write_n, 0);
  EXPECT_EQ(fallback.truncate_on_close, -1);
  EXPECT_EQ(fallback.crash_after_rename_n, 0);
  ::unsetenv("RETIA_FAIL_WRITE_N");
}

// ---------------------------------------------------------------------------
// Deprecated nn:: shims stay contract-compatible.

class TwoLayer : public nn::Module {
 public:
  explicit TwoLayer(util::Rng* rng) : a_(4, 3, rng), b_(3, 2, rng) {
    RegisterModule("a", &a_);
    RegisterModule("b", &b_);
  }
  nn::Linear a_;
  nn::Linear b_;
};

TEST(DeprecatedShimTest, LegacyCheckpointReadersReportInsteadOfAborting) {
  util::Rng rng(1);
  TwoLayer src(&rng);
  const std::string path = TempPath("shim_legacy.ckpt");
  ASSERT_TRUE(ckpt::WriteLegacyCheckpoint(src, path).ok());

  // Result-based reader on a garbage file: an error, not a CHECK-abort.
  const std::string garbage = TempPath("shim_garbage.ckpt");
  ASSERT_TRUE(ckpt::WriteFileDurably(garbage, "definitely not a ckpt").ok());
  util::Rng rng2(2);
  TwoLayer dst(&rng2);
  const Result r = ckpt::ReadLegacyCheckpointInto(&dst, garbage);
  EXPECT_EQ(r.code(), ErrorCode::kBadMagic);

  // And the real file loads exactly.
  ASSERT_TRUE(ckpt::ReadLegacyCheckpointInto(&dst, path).ok());
  EXPECT_EQ(src.a_.weight().impl().data, dst.a_.weight().impl().data);
}

}  // namespace
}  // namespace retia
