// retia::obs test suite.
//
// Covers the histogram bucket/quantile math, trace-event JSON validity
// (parsed back with a small JSON parser, the same check a chrome://tracing
// load would do), exact counter sums under concurrent increments from pool
// threads, and the determinism guard: enabling metrics + tracing must not
// change a single bit of a training step's parameters or gradients.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/retia.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"
#include "obs/obs.h"
#include "par/thread_pool.h"
#include "tensor/tensor.h"
#include "tkg/synthetic.h"

namespace retia::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough to validate the
// exporters' output by parsing it back (structure + types), the way a
// trace viewer would.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out->push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end == begin) return false;
    out->kind = JsonValue::kNumber;
    pos_ += static_cast<size_t>(end - begin);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseOrDie(const std::string& text) {
  JsonValue value;
  EXPECT_TRUE(JsonParser(text).Parse(&value)) << "invalid JSON: " << text;
  return value;
}

// ---------------------------------------------------------------------------
// Histogram bucket edges.

TEST(HistogramBucketTest, IndexMatchesPowerOfTwoEdges) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
}

TEST(HistogramBucketTest, EveryValueFallsInsideItsBucketEdges) {
  for (int64_t value : {0, 1, 2, 3, 5, 63, 64, 65, 1000, 1 << 20}) {
    const int bucket = Histogram::BucketIndex(value);
    EXPECT_LE(Histogram::BucketLowerEdge(bucket), value) << value;
    EXPECT_LT(value, Histogram::BucketUpperEdge(bucket)) << value;
  }
}

TEST(HistogramBucketTest, HugeAndNegativeValuesClampToEndBuckets) {
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 62),
            Histogram::kNumBuckets - 1);
}

TEST(HistogramBucketTest, EdgesTileWithoutGaps) {
  for (int b = 1; b < Histogram::kNumBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::BucketUpperEdge(b - 1), Histogram::BucketLowerEdge(b));
  }
}

// ---------------------------------------------------------------------------
// Quantile math.

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  std::array<int64_t, Histogram::kNumBuckets> buckets{};
  EXPECT_EQ(Histogram::QuantileFromBuckets(buckets, 0, 0.5), 0.0);
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesWithinEdges) {
  std::array<int64_t, Histogram::kNumBuckets> buckets{};
  const int bucket = Histogram::BucketIndex(100);  // [64, 128)
  buckets[bucket] = 1000;
  for (double q : {0.01, 0.50, 0.95, 0.99}) {
    const double est = Histogram::QuantileFromBuckets(buckets, 1000, q);
    EXPECT_GE(est, Histogram::BucketLowerEdge(bucket)) << q;
    EXPECT_LE(est, Histogram::BucketUpperEdge(bucket)) << q;
  }
  // Interpolation is monotone in q.
  EXPECT_LT(Histogram::QuantileFromBuckets(buckets, 1000, 0.1),
            Histogram::QuantileFromBuckets(buckets, 1000, 0.9));
}

TEST(HistogramQuantileTest, SplitDistributionPicksTheRightBucket) {
  // 90 samples in [8,16), 10 samples in [1024,2048): p50 must come from
  // the low bucket, p99 from the high one.
  std::array<int64_t, Histogram::kNumBuckets> buckets{};
  buckets[Histogram::BucketIndex(10)] = 90;
  buckets[Histogram::BucketIndex(1500)] = 10;
  const double p50 = Histogram::QuantileFromBuckets(buckets, 100, 0.50);
  const double p99 = Histogram::QuantileFromBuckets(buckets, 100, 0.99);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 2048.0);
}

TEST(HistogramQuantileTest, RecordedSnapshotMatchesHandComputedStats) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(10);
  for (int i = 0; i < 5; ++i) hist.Record(5000);
  const Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 105);
  EXPECT_DOUBLE_EQ(snap.sum, 100 * 10.0 + 5 * 5000.0);
  EXPECT_NEAR(snap.mean, snap.sum / 105.0, 1e-9);
  EXPECT_LE(snap.p50, 16.0);        // bucket of 10 is [8, 16)
  EXPECT_GE(snap.p99, 4096.0);      // bucket of 5000 is [4096, 8192)
  int64_t total = 0;
  for (int64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
}

// ---------------------------------------------------------------------------
// Counter / gauge semantics.

TEST(CounterTest, ConcurrentIncrementsFromPoolThreadsSumExactly) {
  Counter* counter =
      MetricsRegistry::Get().GetCounter("obs_test.concurrent_counter");
  counter->Reset();
  par::ThreadPool pool(8);
  const int64_t kShards = 500;
  const int64_t kAddsPerShard = 200;
  pool.ParallelRun(kShards, [&](int64_t) {
    for (int64_t i = 0; i < kAddsPerShard; ++i) counter->Add(1);
  });
  EXPECT_EQ(counter->Value(), kShards * kAddsPerShard);
}

TEST(GaugeTest, RoundTripsDoubleValues) {
  Gauge gauge;
  for (double v : {0.0, 1.5, -3.25, 1e-30, 6.02e23}) {
    gauge.Set(v);
    EXPECT_EQ(gauge.Value(), v);
  }
}

TEST(MetricsMacroTest, TimedScopeRecordsOneSamplePerExecution) {
#if defined(RETIA_OBS_DISABLE)
  GTEST_SKIP() << "instrumentation macros compiled out in this build";
#endif
  SetMetricsEnabled(true);
  Histogram* hist =
      MetricsRegistry::Get().GetHistogram("obs_test.macro_scope.us");
  hist->Reset();
  for (int i = 0; i < 3; ++i) {
    RETIA_OBS_TIMED_SCOPE("obs_test.macro_scope.us");
  }
  EXPECT_EQ(hist->Snap().count, 3);
  SetMetricsEnabled(false);
  {
    RETIA_OBS_TIMED_SCOPE("obs_test.macro_scope.us");
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(hist->Snap().count, 3);  // disabled execution recorded nothing
}

// ---------------------------------------------------------------------------
// Registry behaviour.

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* a = registry.GetCounter("obs_test.stable");
  Counter* b = registry.GetCounter("obs_test.stable");
  EXPECT_EQ(a, b);
  std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "obs_test.stable"),
            names.end());
}

TEST(MetricsRegistryTest, ToJsonParsesBackWithAllThreeSections) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("obs_test.json_counter")->Add(7);
  registry.GetGauge("obs_test.json_gauge")->Set(2.5);
  registry.GetHistogram("obs_test.json_hist")->Record(42);
  const JsonValue root = ParseOrDie(registry.ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_TRUE(root.Has("counters"));
  ASSERT_TRUE(root.Has("gauges"));
  ASSERT_TRUE(root.Has("histograms"));
  EXPECT_EQ(root.At("counters").At("obs_test.json_counter").number, 7.0);
  EXPECT_EQ(root.At("gauges").At("obs_test.json_gauge").number, 2.5);
  const JsonValue& hist = root.At("histograms").At("obs_test.json_hist");
  EXPECT_GE(hist.At("count").number, 1.0);
  for (const char* key : {"count", "sum", "mean", "p50", "p95", "p99"}) {
    EXPECT_TRUE(hist.Has(key)) << key;
  }
  ASSERT_TRUE(hist.Has("buckets"));
  EXPECT_EQ(hist.At("buckets").kind, JsonValue::kArray);
}

// ---------------------------------------------------------------------------
// Tracing: JSON validity (parse-back) and ring-buffer accounting.

TEST(TraceTest, ExportedJsonIsValidChromeTraceFormat) {
#if defined(RETIA_OBS_DISABLE)
  GTEST_SKIP() << "instrumentation macros compiled out in this build";
#endif
  Trace::Clear();
  Trace::Enable();
  {
    RETIA_OBS_TRACE_SPAN("obs_test.outer");
    RETIA_OBS_TRACE_SPAN("obs_test.inner");
  }
  Trace::RecordComplete("obs_test.manual", /*start_ns=*/1000,
                        /*duration_ns=*/2500);
  Trace::Disable();

  const JsonValue root = ParseOrDie(Trace::ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_EQ(root.At("displayTimeUnit").str, "ms");
  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_EQ(events.array.size(), 3u);
  double last_ts = -1.0;
  for (const JsonValue& event : events.array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    EXPECT_EQ(event.At("ph").str, "X");
    EXPECT_EQ(event.At("cat").str, "retia");
    EXPECT_EQ(event.At("pid").number, 1.0);
    EXPECT_GT(event.At("tid").number, 0.0);
    EXPECT_FALSE(event.At("name").str.empty());
    EXPECT_GE(event.At("dur").number, 0.0);
    EXPECT_GE(event.At("ts").number, last_ts);  // sorted by start time
    last_ts = event.At("ts").number;
  }
  Trace::Clear();
}

TEST(TraceTest, WriteFileRoundTripsThroughDisk) {
#if defined(RETIA_OBS_DISABLE)
  GTEST_SKIP() << "instrumentation macros compiled out in this build";
#endif
  Trace::Clear();
  Trace::Enable();
  { RETIA_OBS_TRACE_SPAN("obs_test.file_span"); }
  Trace::Disable();
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(Trace::WriteFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const JsonValue root = ParseOrDie(content);
  ASSERT_EQ(root.At("traceEvents").kind, JsonValue::kArray);
  EXPECT_EQ(root.At("traceEvents").array.size(), 1u);
  EXPECT_EQ(root.At("traceEvents").array[0].At("name").str,
            "obs_test.file_span");
  Trace::Clear();
}

TEST(TraceTest, RingOverflowDropsOldestAndCountsThem) {
  Trace::Clear();
  Trace::Enable();
  const int64_t kEvents = Trace::kRingCapacity + 500;
  for (int64_t i = 0; i < kEvents; ++i) {
    Trace::RecordComplete("obs_test.flood", i * 10, 5);
  }
  Trace::Disable();
  EXPECT_EQ(Trace::EventCount(), Trace::kRingCapacity);
  EXPECT_EQ(Trace::DroppedCount(), 500);
  Trace::Clear();
  EXPECT_EQ(Trace::EventCount(), 0);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  Trace::Clear();
  ASSERT_FALSE(Trace::Enabled());
  { RETIA_OBS_TRACE_SPAN("obs_test.off"); }
  EXPECT_EQ(Trace::EventCount(), 0);
}

// ---------------------------------------------------------------------------
// Determinism guard: turning instrumentation on must not perturb training
// by a single bit. Mirrors par_test's end-to-end step; memcmp, no
// tolerance.

struct RunResult {
  std::vector<std::vector<float>> grads;
  std::vector<std::vector<float>> params;
  float loss = 0.0f;
};

RunResult RunTrainStep(const tkg::TkgDataset& ds) {
  par::ThreadPool pool(4);
  par::ScopedDefaultPool guard(&pool);
  core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 16;
  config.history_len = 3;
  config.conv_kernels = 4;
  config.num_bases = 2;
  core::RetiaModel model(config);
  model.SetTraining(false);  // keep RNG-free; gradients still flow
  graph::GraphCache cache(&ds);
  auto states = model.Evolve(cache, cache.HistoryBefore(8, config.history_len));
  auto loss = model.ComputeLoss(states, ds.FactsAt(8));
  loss.joint.Backward();
  std::vector<tensor::Tensor> params = model.Parameters();
  nn::ClipGradNorm(params, 1.0f);
  RunResult result;
  result.loss = loss.joint.Item();
  for (const tensor::Tensor& p : params) result.grads.push_back(p.impl().grad);
  nn::Adam opt(params, nn::Adam::Options{.lr = 1e-2f});
  opt.Step();
  for (const tensor::Tensor& p : params) result.params.push_back(p.impl().data);
  return result;
}

TEST(DeterminismGuardTest, TracingAndMetricsDoNotChangeModelOutputs) {
  tkg::SyntheticConfig sc = tkg::SyntheticConfig::Icews14Like();
  sc.num_entities = 80;
  sc.num_timestamps = 12;
  sc.facts_per_timestamp = 30;
  sc.num_schemas = 120;
  const tkg::TkgDataset ds = tkg::GenerateSynthetic(sc);

  SetMetricsEnabled(false);
  ASSERT_FALSE(Trace::Enabled());
  const RunResult baseline = RunTrainStep(ds);

  SetMetricsEnabled(true);
  Trace::Enable();
  const RunResult instrumented = RunTrainStep(ds);
  Trace::Disable();
  Trace::Clear();

  EXPECT_EQ(std::memcmp(&baseline.loss, &instrumented.loss, sizeof(float)), 0);
  ASSERT_EQ(baseline.grads.size(), instrumented.grads.size());
  for (size_t i = 0; i < baseline.grads.size(); ++i) {
    ASSERT_EQ(baseline.grads[i].size(), instrumented.grads[i].size());
    EXPECT_EQ(std::memcmp(baseline.grads[i].data(),
                          instrumented.grads[i].data(),
                          baseline.grads[i].size() * sizeof(float)),
              0)
        << "grad " << i;
  }
  ASSERT_EQ(baseline.params.size(), instrumented.params.size());
  for (size_t i = 0; i < baseline.params.size(); ++i) {
    EXPECT_EQ(std::memcmp(baseline.params[i].data(),
                          instrumented.params[i].data(),
                          baseline.params[i].size() * sizeof(float)),
              0)
        << "param " << i;
  }
}

}  // namespace
}  // namespace retia::obs
