#include <cmath>

#include <gtest/gtest.h>

#include "core/decoder.h"
#include "core/retia.h"
#include "core/rgcn.h"
#include "grad_check.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tkg/synthetic.h"

namespace retia::core {
namespace {

using tensor::Tensor;
using ::retia::testing::TestTensor;

tkg::SyntheticConfig TinyConfig() {
  tkg::SyntheticConfig c;
  c.name = "tiny";
  c.num_entities = 30;
  c.num_relations = 5;
  c.num_timestamps = 12;
  c.facts_per_timestamp = 12;
  c.num_schemas = 30;
  c.max_period = 3;
  c.repeat_prob = 0.9;
  c.noise_frac = 0.1;
  c.seed = 99;
  return c;
}

RetiaConfig TinyModelConfig(const tkg::TkgDataset& ds) {
  RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.history_len = 3;
  config.conv_kernels = 4;
  config.num_bases = 2;
  return config;
}

// ---------------------------------------------------------------------------
// EntityRgcnLayer.

TEST(EntityRgcnLayerTest, OutputShape) {
  util::Rng rng(1);
  graph::Subgraph g({{0, 0, 1, 0}, {1, 1, 2, 0}}, 4, 2);
  EntityRgcnLayer layer(8, 4, 2, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor out = layer.Forward(TestTensor({4, 8}, 2, false),
                             TestTensor({4, 8}, 3, false), g, &rng);
  EXPECT_EQ(out.Dim(0), 4);
  EXPECT_EQ(out.Dim(1), 8);
}

TEST(EntityRgcnLayerTest, IsolatedNodeOnlyGetsSelfLoop) {
  util::Rng rng(1);
  // Entity 3 has no edges; with zero node features and zero relation
  // features, every output row differs only via the self loop, which is
  // zero for a zero input row.
  graph::Subgraph g({{0, 0, 1, 0}}, 4, 1);
  EntityRgcnLayer layer(4, 2, 1, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor nodes = Tensor::Zeros({4, 4});
  Tensor rels = TestTensor({2, 4}, 5, false);
  Tensor out = layer.Forward(nodes, rels, g, &rng);
  // Row 3 (isolated): self-loop of zero input = 0 before activation;
  // RReLU(0) = 0.
  for (int64_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(out.At(3, j), 0.0f);
  // Row 1 receives a message from entity 0 + relation 0: generally nonzero.
  float sum = 0.0f;
  for (int64_t j = 0; j < 4; ++j) sum += std::fabs(out.At(1, j));
  EXPECT_GT(sum, 1e-6f);
}

TEST(EntityRgcnLayerTest, GradientsReachAllParameters) {
  util::Rng rng(2);
  graph::Subgraph g({{0, 0, 1, 0}, {2, 1, 0, 0}}, 3, 2);
  EntityRgcnLayer layer(4, 4, 2, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor nodes = TestTensor({3, 4}, 7);
  Tensor rels = TestTensor({4, 4}, 8);
  tensor::Sum(layer.Forward(nodes, rels, g, &rng)).Backward();
  EXPECT_TRUE(nodes.HasGrad());
  EXPECT_TRUE(rels.HasGrad());
  for (const Tensor& p : layer.Parameters()) {
    EXPECT_TRUE(p.HasGrad());
  }
}

TEST(EntityRgcnLayerTest, DegreeNormalizationAverationsParallelEdges) {
  util::Rng rng(3);
  // Two parallel facts (0,0,2) and (1,0,2): messages into 2 are averaged,
  // so doubling identical sources must not double the aggregate.
  EntityRgcnLayer layer(4, 2, 1, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor nodes = TestTensor({3, 4}, 9, false);
  // Make the two source rows identical.
  for (int64_t j = 0; j < 4; ++j) nodes.At(1, j) = nodes.At(0, j);
  Tensor rels = TestTensor({2, 4}, 10, false);
  graph::Subgraph g1({{0, 0, 2, 0}}, 3, 1);
  graph::Subgraph g2({{0, 0, 2, 0}, {1, 0, 2, 0}}, 3, 1);
  Tensor out1 = layer.Forward(nodes, rels, g1, &rng);
  Tensor out2 = layer.Forward(nodes, rels, g2, &rng);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out1.At(2, j), out2.At(2, j), 1e-5f);
  }
}

// ---------------------------------------------------------------------------
// RelationRgcnLayer.

TEST(RelationRgcnLayerTest, OutputShapeAndGradients) {
  util::Rng rng(4);
  graph::Subgraph g({{0, 0, 1, 0}, {1, 1, 2, 0}}, 3, 2);
  graph::HyperSubgraph hg(g);
  ASSERT_GT(hg.num_edges(), 0);
  RelationRgcnLayer layer(4, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor rels = TestTensor({4, 4}, 11);
  Tensor hypers = TestTensor({8, 4}, 12);
  Tensor out = layer.Forward(rels, hypers, hg, &rng);
  EXPECT_EQ(out.Dim(0), 4);
  tensor::Sum(out).Backward();
  EXPECT_TRUE(rels.HasGrad());
  EXPECT_TRUE(hypers.HasGrad());
}

TEST(RelationRgcnLayerTest, EmptyHypergraphStillProducesSelfLoopOutput) {
  util::Rng rng(5);
  graph::Subgraph g({}, 3, 2);
  graph::HyperSubgraph hg(g);
  RelationRgcnLayer layer(4, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor out = layer.Forward(TestTensor({4, 4}, 13, false),
                             TestTensor({8, 4}, 14, false), hg, &rng);
  EXPECT_EQ(out.Dim(0), 4);
}

// Relation-to-relation message passing is the paper's fix for "message
// islands": changing an *adjacent relation's* embedding must change the
// output embedding of the relation it is hyper-connected to.
TEST(RelationRgcnLayerTest, MessagesCrossBetweenRelations) {
  util::Rng rng(6);
  graph::Subgraph g({{0, 0, 1, 0}, {1, 1, 2, 0}}, 3, 2);
  graph::HyperSubgraph hg(g);
  RelationRgcnLayer layer(4, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor hypers = TestTensor({8, 4}, 15, false);
  Tensor rels_a = TestTensor({4, 4}, 16, false);
  Tensor rels_b = rels_a.Detach();
  // Perturb relation 0 only.
  for (int64_t j = 0; j < 4; ++j) rels_b.At(0, j) += 1.0f;
  Tensor out_a = layer.Forward(rels_a, hypers, hg, &rng);
  Tensor out_b = layer.Forward(rels_b, hypers, hg, &rng);
  // Relation 1's output must differ: the message from relation 0 reached it
  // through the hyperedge (impossible in RE-GCN-style modeling).
  float delta = 0.0f;
  for (int64_t j = 0; j < 4; ++j)
    delta += std::fabs(out_a.At(1, j) - out_b.At(1, j));
  EXPECT_GT(delta, 1e-4f);
}

// ---------------------------------------------------------------------------
// ConvTransEDecoder.

TEST(ConvTransEDecoderTest, LogitShape) {
  util::Rng rng(7);
  ConvTransEDecoder dec(8, 4, 3, 0.0f, &rng);
  dec.SetTraining(false);
  Tensor logits = dec.Forward(TestTensor({5, 8}, 17, false),
                              TestTensor({5, 8}, 18, false),
                              TestTensor({11, 8}, 19, false), &rng);
  EXPECT_EQ(logits.Dim(0), 5);
  EXPECT_EQ(logits.Dim(1), 11);
}

TEST(ConvTransEDecoderTest, GradientsFlowToQueryAndCandidates) {
  util::Rng rng(8);
  ConvTransEDecoder dec(8, 4, 3, 0.0f, &rng);
  dec.SetTraining(false);
  Tensor a = TestTensor({2, 8}, 20);
  Tensor b = TestTensor({2, 8}, 21);
  Tensor cands = TestTensor({6, 8}, 22);
  tensor::Sum(dec.Forward(a, b, cands, &rng)).Backward();
  EXPECT_TRUE(a.HasGrad());
  EXPECT_TRUE(b.HasGrad());
  EXPECT_TRUE(cands.HasGrad());
  for (const Tensor& p : dec.Parameters()) EXPECT_TRUE(p.HasGrad());
}

TEST(ConvTransEDecoderTest, TrainableToPreferTarget) {
  // A single query trained to rank candidate 3 first.
  util::Rng rng(9);
  ConvTransEDecoder dec(6, 4, 3, 0.0f, &rng);
  Tensor a = TestTensor({1, 6}, 23, false);
  Tensor b = TestTensor({1, 6}, 24, false);
  Tensor cands = TestTensor({5, 6}, 25, false);
  std::vector<Tensor> params = dec.Parameters();
  nn::Adam opt(params, nn::Adam::Options{.lr = 0.01f});
  for (int step = 0; step < 200; ++step) {
    dec.ZeroGrad();
    Tensor logits = dec.Forward(a, b, cands, &rng);
    tensor::CrossEntropyLogits(logits, {3}).Backward();
    opt.Step();
  }
  dec.SetTraining(false);
  Tensor logits = dec.Forward(a, b, cands, &rng);
  int64_t best = 0;
  for (int64_t j = 1; j < 5; ++j)
    if (logits.At(0, j) > logits.At(0, best)) best = j;
  EXPECT_EQ(best, 3);
}

// ---------------------------------------------------------------------------
// RetiaModel: evolution across configurations.

class RetiaAblationTest : public ::testing::TestWithParam<RetiaConfig> {};

TEST_P(RetiaAblationTest, EvolveProducesWellFormedStates) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaConfig config = GetParam();
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.conv_kernels = 4;
  RetiaModel model(config);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(5, config.history_len));
  ASSERT_EQ(states.size(), 3u);
  for (const auto& st : states) {
    EXPECT_EQ(st.entities.Dim(0), ds.num_entities());
    EXPECT_EQ(st.entities.Dim(1), 8);
    EXPECT_EQ(st.relations.Dim(0), 2 * ds.num_relations());
    for (int64_t i = 0; i < st.entities.NumElements(); ++i) {
      EXPECT_TRUE(std::isfinite(st.entities.Data()[i]));
    }
    for (int64_t i = 0; i < st.relations.NumElements(); ++i) {
      EXPECT_TRUE(std::isfinite(st.relations.Data()[i]));
    }
  }
}

TEST_P(RetiaAblationTest, LossBackwardRuns) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaConfig config = GetParam();
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = 8;
  config.conv_kernels = 4;
  RetiaModel model(config);
  graph::GraphCache cache(&ds);
  auto states = model.Evolve(cache, cache.HistoryBefore(5, config.history_len));
  auto loss = model.ComputeLoss(states, ds.FactsAt(5));
  EXPECT_TRUE(std::isfinite(loss.joint.Item()));
  EXPECT_GT(loss.entity_loss, 0.0f);
  EXPECT_GT(loss.relation_loss, 0.0f);
  loss.joint.Backward();  // must not crash
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RetiaAblationTest,
    ::testing::Values(
        RetiaConfig{},  // full model
        [] { RetiaConfig c; c.use_eam = false; return c; }(),
        [] { RetiaConfig c; c.use_ram = false; return c; }(),
        [] { RetiaConfig c; c.use_tim = false; return c; }(),
        [] { RetiaConfig c; c.hyper_mode = HyperMode::kNone; return c; }(),
        [] { RetiaConfig c; c.hyper_mode = HyperMode::kHmp; return c; }(),
        [] { RetiaConfig c; c.relation_mode = RelationMode::kNone; return c; }(),
        [] { RetiaConfig c; c.relation_mode = RelationMode::kMp; return c; }(),
        [] { RetiaConfig c; c.relation_mode = RelationMode::kMpLstm; return c; }(),
        [] { RetiaConfig c; c.time_variability_decode = false; return c; }()),
    [](const ::testing::TestParamInfo<RetiaConfig>& info) {
      const RetiaConfig& c = info.param;
      std::string name;
      if (!c.use_eam) name = "wo_eam";
      else if (!c.use_ram) name = "wo_ram";
      else if (!c.use_tim) name = "wo_tim";
      else if (c.relation_mode == RelationMode::kNone) name = "wo_rm";
      else if (c.relation_mode == RelationMode::kMp) name = "w_mp";
      else if (c.relation_mode == RelationMode::kMpLstm) name = "w_mp_lstm";
      else if (c.hyper_mode == HyperMode::kNone) name = "wo_hrm";
      else if (c.hyper_mode == HyperMode::kHmp) name = "w_hmp";
      else if (!c.time_variability_decode) name = "last_step_decode";
      else name = "full";
      return name + "_" + std::to_string(info.index);
    });

TEST(RetiaModelTest, EmptyHistoryYieldsInitialState) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaModel model(TinyModelConfig(ds));
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  model.SetTraining(false);
  auto states = model.Evolve(cache, {});
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].entities.Dim(0), ds.num_entities());
}

TEST(RetiaModelTest, ScoreObjectsSumsToHistoryLength) {
  // With time-variability decoding the summed softmax outputs total k per
  // row (each softmax sums to 1).
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaConfig config = TinyModelConfig(ds);
  RetiaModel model(config);
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(6, 3));
  Tensor p = model.ScoreObjects(states, {{0, 1}, {3, 2}});
  ASSERT_EQ(p.Dim(0), 2);
  ASSERT_EQ(p.Dim(1), ds.num_entities());
  for (int64_t i = 0; i < 2; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < p.Dim(1); ++j) total += p.At(i, j);
    EXPECT_NEAR(total, 3.0, 1e-3);
  }
}

TEST(RetiaModelTest, ScoreRelationsShape) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaModel model(TinyModelConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto states = model.Evolve(cache, cache.HistoryBefore(6, 3));
  Tensor p = model.ScoreRelations(states, {{0, 1}});
  EXPECT_EQ(p.Dim(0), 1);
  EXPECT_EQ(p.Dim(1), ds.num_relations());
}

TEST(RetiaModelTest, TrainingStepsReduceLoss) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaConfig config = TinyModelConfig(ds);
  RetiaModel model(config);
  graph::GraphCache cache(&ds);
  std::vector<Tensor> params = model.Parameters();
  nn::Adam opt(params, nn::Adam::Options{.lr = 2e-3f});
  const std::vector<int64_t> history = cache.HistoryBefore(5, 3);
  const auto& facts = ds.FactsAt(5);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    model.ZeroGrad();
    auto states = model.Evolve(cache, history);
    auto loss = model.ComputeLoss(states, facts);
    if (step == 0) first_loss = loss.joint.Item();
    last_loss = loss.joint.Item();
    loss.joint.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.8f);
}

TEST(RetiaModelTest, ParameterCountScalesWithVocabulary) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaConfig config = TinyModelConfig(ds);
  RetiaModel model(config);
  // At minimum the three initial embedding tables are present.
  const int64_t minimum = ds.num_entities() * config.dim +
                          2 * ds.num_relations() * config.dim +
                          8 * config.dim;
  EXPECT_GT(model.NumParameters(), minimum);
}

TEST(RetiaModelTest, EvolveIsDeterministicInEvalMode) {
  tkg::TkgDataset ds = tkg::GenerateSynthetic(TinyConfig());
  RetiaModel model(TinyModelConfig(ds));
  model.SetTraining(false);
  graph::GraphCache cache(&ds);
  tensor::NoGradGuard guard;
  auto a = model.Evolve(cache, cache.HistoryBefore(6, 3));
  auto b = model.Evolve(cache, cache.HistoryBefore(6, 3));
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i].entities.NumElements(); ++j) {
      ASSERT_EQ(a[i].entities.Data()[j], b[i].entities.Data()[j]);
    }
  }
}

}  // namespace
}  // namespace retia::core
