#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "tkg/dataset.h"
#include "tkg/synthetic.h"

namespace retia::tkg {
namespace {

std::vector<Quadruple> MakeQuads() {
  // 5 timestamps, 2 facts each.
  std::vector<Quadruple> quads;
  for (int64_t t = 0; t < 5; ++t) {
    quads.push_back({0, 0, 1, t});
    quads.push_back({1, 1, 2, t});
  }
  return quads;
}

// ---------------------------------------------------------------------------
// TkgDataset.

TEST(TkgDatasetTest, StatsCountSplits) {
  TkgDataset ds("toy", 3, 2, MakeQuads(), {{0, 0, 2, 5}}, {{2, 1, 0, 6}});
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.num_train, 10);
  EXPECT_EQ(s.num_valid, 1);
  EXPECT_EQ(s.num_test, 1);
  EXPECT_EQ(s.num_entities, 3);
  EXPECT_EQ(s.num_relations, 2);
  EXPECT_EQ(s.num_timestamps, 7);
}

TEST(TkgDatasetTest, FactsAtMergesSplits) {
  TkgDataset ds("toy", 3, 2, MakeQuads(), {{0, 0, 2, 4}}, {});
  EXPECT_EQ(ds.FactsAt(4).size(), 3u);  // 2 train + 1 valid
  EXPECT_TRUE(ds.FactsAt(99).empty());
}

TEST(TkgDatasetTest, TimesPerSplitSortedAndDistinct) {
  TkgDataset ds("toy", 3, 2, MakeQuads(), {{0, 0, 2, 7}, {0, 1, 2, 6}}, {});
  EXPECT_EQ(ds.train_times(), (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ds.valid_times(), (std::vector<int64_t>{6, 7}));
  EXPECT_TRUE(ds.test_times().empty());
}

TEST(TkgDatasetTest, OutOfRangeEntityDies) {
  EXPECT_DEATH(TkgDataset("bad", 2, 2, {{5, 0, 1, 0}}, {}, {}), "expected");
}

TEST(TkgDatasetTest, OutOfRangeRelationDies) {
  EXPECT_DEATH(TkgDataset("bad", 3, 1, {{0, 1, 1, 0}}, {}, {}), "expected");
}

// ---------------------------------------------------------------------------
// TSV round trip.

TEST(TkgIoTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/quads.tsv";
  std::vector<Quadruple> quads = MakeQuads();
  SaveQuadrupleFile(path, quads);
  std::vector<Quadruple> loaded = LoadQuadrupleFile(path);
  EXPECT_EQ(loaded, quads);
  std::remove(path.c_str());
}

TEST(TkgIoTest, GranularityDividesTimestamps) {
  const std::string path = ::testing::TempDir() + "/quads_gran.tsv";
  SaveQuadrupleFile(path, {{0, 0, 1, 48}, {1, 0, 2, 72}});
  std::vector<Quadruple> loaded = LoadQuadrupleFile(path, /*granularity=*/24);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].time, 2);
  EXPECT_EQ(loaded[1].time, 3);
  std::remove(path.c_str());
}

TEST(TkgIoTest, MissingFileDies) {
  EXPECT_DEATH(LoadQuadrupleFile("/nonexistent/file.tsv"), "cannot open");
}

// ---------------------------------------------------------------------------
// SplitByTime.

TEST(SplitByTimeTest, ProportionsRespectTimestampBoundaries) {
  std::vector<Quadruple> all;
  for (int64_t t = 0; t < 10; ++t)
    for (int64_t i = 0; i < 3; ++i) all.push_back({i, 0, i + 1, t});
  std::vector<Quadruple> train, valid, test;
  SplitByTime(all, SplitProportions{0.8, 0.1}, &train, &valid, &test);
  EXPECT_EQ(train.size(), 24u);  // timestamps 0..7
  EXPECT_EQ(valid.size(), 3u);   // timestamp 8
  EXPECT_EQ(test.size(), 3u);    // timestamp 9
}

TEST(SplitByTimeTest, SplitsAreTimeOrdered) {
  std::vector<Quadruple> all;
  for (int64_t t = 0; t < 20; ++t) all.push_back({0, 0, 1, 19 - t});
  std::vector<Quadruple> train, valid, test;
  SplitByTime(all, SplitProportions{}, &train, &valid, &test);
  int64_t max_train = -1, min_valid = 1'000'000, max_valid = -1,
          min_test = 1'000'000;
  for (const auto& q : train) max_train = std::max(max_train, q.time);
  for (const auto& q : valid) {
    min_valid = std::min(min_valid, q.time);
    max_valid = std::max(max_valid, q.time);
  }
  for (const auto& q : test) min_test = std::min(min_test, q.time);
  EXPECT_LT(max_train, min_valid);
  EXPECT_LT(max_valid, min_test);
}

TEST(SplitByTimeTest, TooFewTimestampsDies) {
  std::vector<Quadruple> all = {{0, 0, 1, 0}, {0, 0, 1, 1}};
  std::vector<Quadruple> train, valid, test;
  EXPECT_DEATH(SplitByTime(all, SplitProportions{}, &train, &valid, &test),
               "at least 3 timestamps");
}

TEST(SplitByTimeTest, EverySplitNonEmptyOnSmallInputs) {
  std::vector<Quadruple> all = {{0, 0, 1, 0}, {0, 0, 1, 1}, {0, 0, 1, 2}};
  std::vector<Quadruple> train, valid, test;
  SplitByTime(all, SplitProportions{}, &train, &valid, &test);
  EXPECT_EQ(train.size(), 1u);
  EXPECT_EQ(valid.size(), 1u);
  EXPECT_EQ(test.size(), 1u);
}

// ---------------------------------------------------------------------------
// Synthetic generator: properties that must hold for all five profiles.

class SyntheticProfileTest
    : public ::testing::TestWithParam<SyntheticConfig> {};

TEST_P(SyntheticProfileTest, RespectsDeclaredVocabulary) {
  TkgDataset ds = GenerateSynthetic(GetParam());
  for (const auto* split : {&ds.train(), &ds.valid(), &ds.test()}) {
    for (const Quadruple& q : *split) {
      EXPECT_LT(q.subject, ds.num_entities());
      EXPECT_LT(q.object, ds.num_entities());
      EXPECT_LT(q.relation, ds.num_relations());
      EXPECT_NE(q.subject, q.object);  // generator forbids self loops
      EXPECT_GE(q.time, 0);
      EXPECT_LT(q.time, GetParam().num_timestamps);
    }
  }
}

TEST_P(SyntheticProfileTest, SplitIsEightTenOneOne) {
  TkgDataset ds = GenerateSynthetic(GetParam());
  const double total = static_cast<double>(
      ds.train().size() + ds.valid().size() + ds.test().size());
  EXPECT_GT(ds.train().size() / total, 0.7);
  EXPECT_LT(ds.train().size() / total, 0.9);
  EXPECT_GT(ds.valid().size(), 0u);
  EXPECT_GT(ds.test().size(), 0u);
}

TEST_P(SyntheticProfileTest, NoDuplicateFactsWithinATimestamp) {
  TkgDataset ds = GenerateSynthetic(GetParam());
  for (int64_t t = 0; t < GetParam().num_timestamps; ++t) {
    std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
    for (const Quadruple& q : ds.FactsAt(t)) {
      EXPECT_TRUE(seen.insert({q.subject, q.relation, q.object}).second)
          << "duplicate fact at t=" << t;
    }
  }
}

TEST_P(SyntheticProfileTest, DeterministicForFixedSeed) {
  TkgDataset a = GenerateSynthetic(GetParam());
  TkgDataset b = GenerateSynthetic(GetParam());
  ASSERT_EQ(a.train().size(), b.train().size());
  EXPECT_EQ(a.train(), b.train());
  EXPECT_EQ(a.test(), b.test());
}

TEST_P(SyntheticProfileTest, EveryTimestampHasFacts) {
  TkgDataset ds = GenerateSynthetic(GetParam());
  for (int64_t t = 0; t < GetParam().num_timestamps; ++t) {
    EXPECT_FALSE(ds.FactsAt(t).empty()) << "empty timestamp " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, SyntheticProfileTest,
    ::testing::Values(SyntheticConfig::Icews14Like(),
                      SyntheticConfig::Icews0515Like(),
                      SyntheticConfig::Icews18Like(),
                      SyntheticConfig::YagoLike(), SyntheticConfig::WikiLike()),
    [](const ::testing::TestParamInfo<SyntheticConfig>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

// The structural contrast the generators must reproduce (Sec. 1 of
// DESIGN.md): YAGO/WIKI-like data repeats facts across timestamps far more
// than ICEWS-like data. This is what makes extrapolation easy there.
TEST(SyntheticContrastTest, YagoRepeatsMoreThanIcews) {
  auto repetition_rate = [](const TkgDataset& ds) {
    std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
    int64_t repeated = 0;
    int64_t total = 0;
    for (const auto* split : {&ds.train(), &ds.valid(), &ds.test()}) {
      for (const Quadruple& q : *split) {
        ++total;
        if (!seen.insert({q.subject, q.relation, q.object}).second)
          ++repeated;
      }
    }
    return static_cast<double>(repeated) / static_cast<double>(total);
  };
  const double yago =
      repetition_rate(GenerateSynthetic(SyntheticConfig::YagoLike()));
  const double icews =
      repetition_rate(GenerateSynthetic(SyntheticConfig::Icews14Like()));
  EXPECT_GT(yago, icews + 0.15) << "yago=" << yago << " icews=" << icews;
}

TEST(SyntheticContrastTest, DatasetSizesOrderedLikeTableV) {
  // ICEWS18-like has the most entities, YAGO-like the fewest relations.
  TkgDataset i18 = GenerateSynthetic(SyntheticConfig::Icews18Like());
  TkgDataset i14 = GenerateSynthetic(SyntheticConfig::Icews14Like());
  TkgDataset yago = GenerateSynthetic(SyntheticConfig::YagoLike());
  EXPECT_GT(i18.num_entities(), i14.num_entities());
  EXPECT_LT(yago.num_relations(), i14.num_relations());
}

}  // namespace
}  // namespace retia::tkg
