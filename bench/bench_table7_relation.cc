// Table VII: relation forecasting (MRR) on all five datasets.
//
// Paper findings: the relation task saturates (MRR ~98) on YAGO/WIKI
// because they have few, stable relations; it stays low (~40) on the ICEWS
// datasets; dynamic methods beat static ones; RETIA leads almost
// everywhere.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using retia::bench::ResultsCache;
using retia::bench::RunResult;
using retia::util::TablePrinter;

struct MethodSpec {
  std::string name;
  std::string runner;
  bool online_protocol = false;
};

const std::vector<MethodSpec> kMethods = {
    {"ConvE", "static:ConvE"},
    {"Conv-TransE", "static:Conv-TransE"},
    {"RGCRN", "evo:rgcrn"},
    {"RE-GCN", "evo:regcn"},
    {"TiRGN", "evo:tirgn"},
    {"RETIA", "evo:retia", true},
};

const std::map<std::string, std::map<std::string, double>> kPaper = {
    {"YAGO-like",
     {{"ConvE", 91.33}, {"Conv-TransE", 90.98}, {"RGCRN", 90.18},
      {"RE-GCN", 97.74}, {"TiRGN", 93.58}, {"RETIA", 98.91}}},
    {"WIKI-like",
     {{"ConvE", 78.23}, {"Conv-TransE", 86.64}, {"RGCRN", 88.88},
      {"RE-GCN", 97.92}, {"TiRGN", 98.12}, {"RETIA", 98.21}}},
    {"ICEWS14-like",
     {{"ConvE", 38.80}, {"Conv-TransE", 38.40}, {"RGCRN", 38.04},
      {"RE-GCN", 41.06}, {"TiRGN", 42.57}, {"RETIA", 42.05}}},
    {"ICEWS05-15-like",
     {{"ConvE", 37.89}, {"Conv-TransE", 38.26}, {"RGCRN", 38.37},
      {"RE-GCN", 40.63}, {"TiRGN", 42.12}, {"RETIA", 43.19}}},
    {"ICEWS18-like",
     {{"ConvE", 37.73}, {"Conv-TransE", 38.00}, {"RGCRN", 37.14},
      {"RE-GCN", 40.53}, {"TiRGN", 41.78}, {"RETIA", 41.78}}},
};

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table VII — Relation forecasting (MRR) on all datasets",
      "Paper: near-saturation on YAGO/WIKI, ~40 on ICEWS; RETIA best or "
      "tied on 4 of 5.");
  ResultsCache cache;
  // Column layout mirrors the paper: one row per method, one column per
  // dataset (paper value in parentheses).
  TablePrinter table({"Method", "ICEWS14", "ICEWS05-15", "ICEWS18", "YAGO",
                      "WIKI"});
  std::map<std::string, std::map<std::string, double>> measured;
  for (const MethodSpec& spec : kMethods) {
    std::vector<std::string> row = {spec.name};
    for (const auto& profile : retia::bench::AllProfiles()) {
      const double paper = kPaper.at(profile.name).at(spec.name);
      if (spec.runner.empty()) {
        row.push_back("- (paper " + TablePrinter::Num(paper) + ")");
        continue;
      }
      RunResult r;
      if (spec.runner.rfind("static:", 0) == 0) {
        r = retia::bench::RunStatic(profile, spec.runner.substr(7), cache);
      } else {
        r = retia::bench::RunEvolution(profile, spec.runner.substr(4), cache);
      }
      const double mrr = spec.online_protocol ? r.online_relation_mrr
                                              : r.offline_relation_mrr;
      measured[spec.name][profile.name] = mrr;
      row.push_back(TablePrinter::Num(mrr) + " (paper " +
                    TablePrinter::Num(paper) + ")");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  const bool saturation =
      measured["RETIA"]["YAGO-like"] > measured["RETIA"]["ICEWS18-like"] &&
      measured["RETIA"]["WIKI-like"] > measured["RETIA"]["ICEWS18-like"];
  int retia_wins = 0;
  for (const auto& profile : retia::bench::AllProfiles()) {
    if (measured["RETIA"][profile.name] >=
        measured["RE-GCN"][profile.name]) {
      ++retia_wins;
    }
  }
  std::cout << "checks: relation task easier on YAGO/WIKI than ICEWS: "
            << (saturation ? "PASS" : "FAIL")
            << " | RETIA >= RE-GCN on " << retia_wins << "/5 datasets\n";
  return 0;
}
