// Table VI: ablation study of the EAM and the RAM on all five datasets
// (MRR of both the entity and the relation forecasting tasks).
//
// Paper findings to reproduce qualitatively:
//  * removing the EAM is catastrophic for entity forecasting,
//  * removing the RAM collapses relation forecasting and also hurts entity
//    forecasting,
//  * the full model is best on both tasks.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using retia::bench::ResultsCache;
using retia::bench::RunResult;
using retia::util::TablePrinter;

// Paper Table VI (entity MRR, relation MRR) per dataset per row.
struct PaperCell {
  double entity, relation;
};
const std::map<std::string, std::map<std::string, PaperCell>> kPaper = {
    {"YAGO-like",
     {{"wo. EAM", {2.34, 57.34}},
      {"wo. RAM", {61.30, 15.94}},
      {"RETIA", {67.58, 98.91}}}},
    {"WIKI-like",
     {{"wo. EAM", {0.61, 36.21}},
      {"wo. RAM", {45.78, 12.39}},
      {"RETIA", {70.11, 98.21}}}},
    {"ICEWS14-like",
     {{"wo. EAM", {0.13, 13.72}},
      {"wo. RAM", {29.95, 3.63}},
      {"RETIA", {45.29, 42.05}}}},
    {"ICEWS05-15-like",
     {{"wo. EAM", {11.31, 19.94}},
      {"wo. RAM", {30.54, 3.90}},
      {"RETIA", {52.17, 43.19}}}},
    {"ICEWS18-like",
     {{"wo. EAM", {0.08, 14.66}},
      {"wo. RAM", {15.66, 2.49}},
      {"RETIA", {34.16, 41.78}}}},
};

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table VI — Ablation study (MRR) of the EAM and RAM on all datasets",
      "Paper: wo.EAM destroys entity forecasting; wo.RAM destroys relation "
      "forecasting; full RETIA best on both.");
  ResultsCache cache;
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"wo. EAM", "retia_wo_eam"},
      {"wo. RAM", "retia_wo_ram"},
      {"RETIA", "retia"},
  };
  bool all_pass = true;
  for (const auto& profile : retia::bench::AllProfiles()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    TablePrinter table({"Module", "paper Entity", "paper Relation", "Entity",
                        "Relation"});
    std::map<std::string, RunResult> results;
    for (const auto& [label, variant] : rows) {
      RunResult r = retia::bench::RunEvolution(profile, variant, cache);
      results[label] = r;
      const PaperCell& paper = kPaper.at(profile.name).at(label);
      table.AddRow({label, TablePrinter::Num(paper.entity),
                    TablePrinter::Num(paper.relation),
                    TablePrinter::Num(r.online_entity_mrr),
                    TablePrinter::Num(r.online_relation_mrr)});
    }
    table.Print(std::cout);
    const bool eam_hurts_entities =
        results["wo. EAM"].online_entity_mrr <
        results["RETIA"].online_entity_mrr;
    const bool ram_hurts_relations =
        results["wo. RAM"].online_relation_mrr <
        results["RETIA"].online_relation_mrr;
    const bool full_best_entity =
        results["RETIA"].online_entity_mrr >=
        results["wo. RAM"].online_entity_mrr;
    std::cout << "checks: wo.EAM < RETIA on entities: "
              << (eam_hurts_entities ? "PASS" : "FAIL")
              << " | wo.RAM < RETIA on relations: "
              << (ram_hurts_relations ? "PASS" : "FAIL")
              << " | RETIA >= wo.RAM on entities: "
              << (full_best_entity ? "PASS" : "FAIL") << "\n";
    all_pass = all_pass && eam_hurts_entities && ram_hurts_relations;
  }
  std::cout << "\noverall: " << (all_pass ? "PASS" : "FAIL") << "\n";
  return 0;
}
