// Micro-benchmarks of the tensor/graph kernels the RETIA pipeline is built
// from (google-benchmark). These are not a paper table; they document the
// substrate's throughput and make kernel-level regressions visible.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "ckpt/model_io.h"
#include "core/retia.h"
#include "core/rgcn.h"
#include "graph/graph_cache.h"
#include "nn/optimizer.h"
#include "quant/quant.h"
#include "par/task_graph.h"
#include "par/thread_pool.h"
#include "simd/simd.h"
#include "tensor/ops.h"
#include "tkg/synthetic.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using retia::tensor::Tensor;

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  retia::util::Rng rng(seed);
  Tensor t = Tensor::Zeros(std::move(shape));
  for (int64_t i = 0; i < t.NumElements(); ++i)
    t.Data()[i] = rng.Uniform(-1.0f, 1.0f);
  return t;
}

// Every benchmark labels its rows with the active kernel backend so a JSON
// dump (scripts/bench_kernels.sh) can attribute numbers to scalar vs
// avx2/sse2/neon without re-deriving the dispatch decision.
void LabelBackend(benchmark::State& state) {
  state.SetLabel(retia::simd::Kernels().name);
}

// Rate counters: google-benchmark divides kIsRate counters by elapsed
// seconds, so feeding total flops/bytes across all iterations yields
// FLOP/s and B/s directly (shown as G/s in the console output).
void CountFlops(benchmark::State& state, double flops_per_iter) {
  state.counters["flops"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void CountBytes(benchmark::State& state, double bytes_per_iter) {
  state.SetBytesProcessed(
      state.iterations() * static_cast<int64_t>(bytes_per_iter));
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({n, n}, 1);
  Tensor b = RandomTensor({n, n}, 2);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::MatMul(a, b).Data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  CountFlops(state, 2.0 * static_cast<double>(n) * n * n);
  LabelBackend(state);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

// One-hot-like A (exactly one nonzero per row): decides whether the
// dedicated sparse GEMM path earns its keep over the dense
// branch-free kernel. GatherRows-as-matmul is the real workload shape.
void BM_MatMulOneHot(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = Tensor::Zeros({n, n});
  retia::util::Rng rng(31);
  for (int64_t i = 0; i < n; ++i)
    a.Data()[i * n + rng.UniformInt(0, n - 1)] = 1.0f;
  Tensor b = RandomTensor({n, n}, 32);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::MatMul(a, b).Data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  CountFlops(state, 2.0 * static_cast<double>(n) * n * n);
  LabelBackend(state);
}
BENCHMARK(BM_MatMulOneHot)->Arg(64)->Arg(128);

void BM_MatMulTransposeB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({256, 32}, 3);   // queries x d
  Tensor b = RandomTensor({n, 32}, 4);     // candidates x d
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::MatMulTransposeB(a, b).Data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * n * 32);
  CountFlops(state, 2.0 * 256.0 * static_cast<double>(n) * 32.0);
  LabelBackend(state);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(256)->Arg(1024);

void BM_GatherScatter(benchmark::State& state) {
  const int64_t edges = state.range(0);
  Tensor nodes = RandomTensor({500, 32}, 5);
  retia::util::Rng rng(6);
  std::vector<int64_t> idx(edges);
  for (auto& i : idx) i = rng.UniformInt(0, 499);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor g = retia::tensor::GatherRows(nodes, idx);
    benchmark::DoNotOptimize(
        retia::tensor::ScatterAddRows(g, idx, 500).Data());
  }
  state.SetItemsProcessed(state.iterations() * edges * 32);
  // One gather read + one scatter read-modify-write per row of 32 floats.
  CountBytes(state, 3.0 * static_cast<double>(edges) * 32 * sizeof(float));
  LabelBackend(state);
}
BENCHMARK(BM_GatherScatter)->Arg(200)->Arg(2000);

void BM_Softmax(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({128, n}, 7);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::Softmax(a).Data());
  }
  CountBytes(state, 2.0 * 128.0 * static_cast<double>(n) * sizeof(float));
  LabelBackend(state);
}
BENCHMARK(BM_Softmax)->Arg(300)->Arg(3000);

// Vectorized elementwise substrate: c = a + b over a flat buffer.
void BM_ElementwiseAdd(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({n}, 41);
  Tensor b = RandomTensor({n}, 42);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::Add(a, b).Data());
  }
  CountBytes(state, 3.0 * static_cast<double>(n) * sizeof(float));
  LabelBackend(state);
}
BENCHMARK(BM_ElementwiseAdd)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// Full Adam step (bias correction, eps, weight decay) over one flat
// parameter, exercising the fused simd adam_update kernel.
void BM_Adam(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor w = RandomTensor({n}, 43);
  retia::nn::Adam adam({w}, retia::nn::Adam::Options{});
  w.impl().grad.assign(static_cast<size_t>(n), 1e-3f);
  for (auto _ : state) {
    adam.Step();
    benchmark::DoNotOptimize(w.Data());
  }
  // w, g, m, v read; w, m, v written.
  CountBytes(state, 7.0 * static_cast<double>(n) * sizeof(float));
  LabelBackend(state);
}
BENCHMARK(BM_Adam)->Arg(1 << 14)->Arg(1 << 18);

void BM_HypergraphConstruction(benchmark::State& state) {
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(
      retia::tkg::SyntheticConfig::Icews18Like());
  for (auto _ : state) {
    retia::graph::Subgraph g(ds.FactsAt(0), ds.num_entities(),
                             ds.num_relations());
    retia::graph::HyperSubgraph hg(g);
    benchmark::DoNotOptimize(hg.num_edges());
  }
}
BENCHMARK(BM_HypergraphConstruction);

void BM_EntityRgcnLayerForward(benchmark::State& state) {
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(
      retia::tkg::SyntheticConfig::Icews14Like());
  retia::graph::Subgraph g(ds.FactsAt(0), ds.num_entities(),
                           ds.num_relations());
  retia::util::Rng rng(8);
  retia::core::EntityRgcnLayer layer(32, 2 * ds.num_relations(), 2, 0.0f,
                                     &rng);
  layer.SetTraining(false);
  Tensor nodes = RandomTensor({ds.num_entities(), 32}, 9);
  Tensor rels = RandomTensor({2 * ds.num_relations(), 32}, 10);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(nodes, rels, g, &rng).Data());
  }
}
BENCHMARK(BM_EntityRgcnLayerForward);

void BM_RelationRgcnLayerForward(benchmark::State& state) {
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(
      retia::tkg::SyntheticConfig::Icews14Like());
  retia::graph::Subgraph g(ds.FactsAt(0), ds.num_entities(),
                           ds.num_relations());
  retia::graph::HyperSubgraph hg(g);
  retia::util::Rng rng(11);
  retia::core::RelationRgcnLayer layer(32, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor rels = RandomTensor({2 * ds.num_relations(), 32}, 12);
  Tensor hypers = RandomTensor({8, 32}, 13);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(rels, hypers, hg, &rng).Data());
  }
}
BENCHMARK(BM_RelationRgcnLayerForward);

// ---------------------------------------------------------------------------
// Quantized inference kernels (docs/QUANTIZATION.md). The decode pair
// BM_DecodeF32 / BM_DecodeQuantized measures the exact serve-time candidate
// product at ICEWS-like scale (d=200, N candidate rows, 256-query batch):
// the f32 row streams 4 N d bytes of candidates per decode, the int8 row
// streams N d + 4 N scale bytes, which is where the quantized speedup
// lives once N d exceeds cache. scripts/bench_kernels.sh distills the
// ratio into BENCH_kernels.json's `quant` block.

constexpr int64_t kQuantDim = 200;  // ICEWS-like embedding width

void BM_QuantizeRowsI8(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor b = RandomTensor({n, kQuantDim}, 61);
  std::vector<int8_t> q(static_cast<size_t>(n * kQuantDim));
  std::vector<float> scales(static_cast<size_t>(n));
  for (auto _ : state) {
    retia::simd::Kernels().quantize_rows_i8(b.Data(), q.data(), scales.data(),
                                            n, kQuantDim);
    benchmark::DoNotOptimize(q.data());
  }
  // Read f32 twice (amax + quantize passes), write int8 + scale.
  CountBytes(state, static_cast<double>(n) *
                        (2.0 * kQuantDim * sizeof(float) + kQuantDim + 4.0));
  LabelBackend(state);
}
BENCHMARK(BM_QuantizeRowsI8)->Arg(4096)->Arg(30000);

void BM_DecodeF32(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({256, kQuantDim}, 62);
  Tensor b = RandomTensor({n, kQuantDim}, 63);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::MatMulTransposeB(a, b).Data());
  }
  CountFlops(state, 2.0 * 256.0 * static_cast<double>(n) * kQuantDim);
  CountBytes(state, static_cast<double>(n) * kQuantDim * sizeof(float));
  LabelBackend(state);
}
// The decode pair feeds the >= 2x int8-vs-f32 acceptance gate in
// scripts/bench_kernels.sh; the longer MinTime keeps a transient on a
// 1-CPU cgroup host from tripping the gate.
BENCHMARK(BM_DecodeF32)->Arg(4096)->Arg(30000)->MinTime(2.0);

void BM_DecodeQuantized(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({256, kQuantDim}, 62);
  Tensor b = RandomTensor({n, kQuantDim}, 63);
  const retia::quant::QuantizedRows bq =
      retia::quant::QuantizeTensorRows(b);  // once per snapshot, as in serve
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        retia::quant::MatMulTransposeBQuant(a, bq).Data());
  }
  CountFlops(state, 2.0 * 256.0 * static_cast<double>(n) * kQuantDim);
  CountBytes(state,
             static_cast<double>(n) * (kQuantDim + sizeof(float)));
  LabelBackend(state);
}
BENCHMARK(BM_DecodeQuantized)->Arg(4096)->Arg(30000)->MinTime(2.0);

void BM_F16RoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor x = RandomTensor({n}, 64);
  std::vector<uint16_t> h(static_cast<size_t>(n));
  std::vector<float> back(static_cast<size_t>(n));
  for (auto _ : state) {
    retia::simd::Kernels().f32_to_f16(x.Data(), h.data(), n);
    retia::simd::Kernels().f16_to_f32(h.data(), back.data(), n);
    benchmark::DoNotOptimize(back.data());
  }
  CountBytes(state, 2.0 * static_cast<double>(n) *
                        (sizeof(float) + sizeof(uint16_t)));
  LabelBackend(state);
}
BENCHMARK(BM_F16RoundTrip)->Arg(1 << 16)->Arg(1 << 20);

// Snapshot size at ICEWS14-like scale: saves the same model through both
// writers and reports the byte counts (the >= 2x snapshot-memory gate in
// scripts/bench_kernels.sh reads the `snapshot_ratio` counter). The timed
// region is the quantized save, so the row doubles as save-throughput.
void BM_QuantizedSnapshotBytes(benchmark::State& state) {
  static const retia::tkg::TkgDataset* ds = new retia::tkg::TkgDataset(
      retia::tkg::GenerateSynthetic(retia::tkg::SyntheticConfig::Icews14Like()));
  static retia::core::RetiaModel* model = [] {
    retia::core::RetiaConfig config;
    config.num_entities = ds->num_entities();
    config.num_relations = ds->num_relations();
    config.dim = kQuantDim;
    auto* m = new retia::core::RetiaModel(config);
    m->SetTraining(false);
    return m;
  }();
  const std::string f32_path = "/tmp/retia_bench_snap_f32.ckpt";
  const std::string q_path = "/tmp/retia_bench_snap_q.ckpt";
  RETIA_CHECK(retia::ckpt::SaveModelArtifact(*model, f32_path, "bench").ok());
  for (auto _ : state) {
    RETIA_CHECK(
        retia::ckpt::SaveQuantizedModelArtifact(*model, q_path, "bench")
            .ok());
  }
  const auto f32_bytes = std::filesystem::file_size(f32_path);
  const auto q_bytes = std::filesystem::file_size(q_path);
  state.counters["f32_bytes"] = static_cast<double>(f32_bytes);
  state.counters["quant_bytes"] = static_cast<double>(q_bytes);
  state.counters["snapshot_ratio"] =
      static_cast<double>(f32_bytes) / static_cast<double>(q_bytes);
  std::filesystem::remove(f32_path);
  std::filesystem::remove(q_path);
  LabelBackend(state);
}
BENCHMARK(BM_QuantizedSnapshotBytes);

// ---------------------------------------------------------------------------
// Thread sweep: the hot parallel kernels at 1/2/4/8 threads. Each arg swaps
// the process-wide default pool (par::ScopedDefaultPool), cross-checks the
// kernel result byte-for-byte against a 1-thread reference (the benchmark
// aborts on any mismatch — determinism is part of what is being measured),
// and reports a `speedup_vs_1t` counter from this run's own 1-thread row.
// On a single-core host the speedup hovers around 1.0; see README for
// multi-core expectations.

// Per-kernel 1-thread ns/iter, filled by the Arg(1) row. google-benchmark
// runs args in registration order within one process, so the 1-thread row
// always lands first.
std::map<std::string, double>& SerialBaselineNs() {
  static std::map<std::string, double> baselines;
  return baselines;
}

// Runs `kernel` under a `threads`-sized default pool (and a matching
// inter-op budget, for fixtures that schedule a par::TaskGraph): verifies
// bit-identity against 1 thread, then times it and records the speedup
// counter.
void RunThreadSweep(benchmark::State& state, const std::string& name,
                    const std::function<Tensor()>& kernel) {
  const int threads = static_cast<int>(state.range(0));
  retia::tensor::NoGradGuard guard;
  std::vector<float> reference;
  {
    retia::par::ThreadPool pool(1);
    retia::par::ScopedDefaultPool scoped(&pool);
    retia::par::ScopedInteropThreads interop(1);
    reference = kernel().impl().data;
  }
  retia::par::ThreadPool pool(threads);
  retia::par::ScopedDefaultPool scoped(&pool);
  retia::par::ScopedInteropThreads interop(threads);
  const std::vector<float> check = kernel().impl().data;
  RETIA_CHECK_EQ(check.size(), reference.size());
  RETIA_CHECK_MSG(std::memcmp(check.data(), reference.data(),
                              check.size() * sizeof(float)) == 0,
                  "thread sweep result not bit-identical to 1-thread run");
  const auto start = std::chrono::steady_clock::now();
  int64_t iters = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel().Data());
    ++iters;
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count()) /
      static_cast<double>(iters > 0 ? iters : 1);
  state.counters["threads"] = threads;
  state.counters["bit_identical"] = 1;
  LabelBackend(state);
  if (threads == 1) {
    SerialBaselineNs()[name] = ns;
  } else if (SerialBaselineNs().count(name) > 0) {
    state.counters["speedup_vs_1t"] = SerialBaselineNs()[name] / ns;
  }
}

void BM_GemmThreadSweep(benchmark::State& state) {
  Tensor a = RandomTensor({128, 128}, 21);
  Tensor b = RandomTensor({128, 128}, 22);
  RunThreadSweep(state, "gemm",
                 [&] { return retia::tensor::MatMul(a, b); });
}
BENCHMARK(BM_GemmThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SoftmaxCrossEntropyThreadSweep(benchmark::State& state) {
  Tensor logits = RandomTensor({128, 3000}, 23);
  std::vector<int64_t> targets;
  for (int64_t i = 0; i < 128; ++i) targets.push_back((i * 17) % 3000);
  RunThreadSweep(state, "softmax_ce", [&] {
    return retia::tensor::CrossEntropyLogits(logits, targets);
  });
}
BENCHMARK(BM_SoftmaxCrossEntropyThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ScatterAddThreadSweep(benchmark::State& state) {
  Tensor src = RandomTensor({20000, 32}, 24);
  retia::util::Rng rng(25);
  std::vector<int64_t> idx(20000);
  for (auto& i : idx) i = rng.UniformInt(0, 499);
  RunThreadSweep(state, "scatter_add", [&] {
    return retia::tensor::ScatterAddRows(src, idx, 500);
  });
}
BENCHMARK(BM_ScatterAddThreadSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Inter-op fixture: one full eval-mode RETIA Evolve over an 8-step history
// against a FRESH GraphCache per call, so every iteration pays the
// per-timestep subgraph/hypergraph construction and twin-interact
// aggregation that the par::TaskGraph overlaps with the recurrent chain
// (DESIGN.md §12). This row (plus the privatized scatter-add above) is
// what the thread-sweep acceptance gate in scripts/bench_kernels.sh reads;
// the bit-identity cross-check doubles as the determinism contract.
void BM_InterOpTimestepSweep(benchmark::State& state) {
  static const retia::tkg::TkgDataset* ds = new retia::tkg::TkgDataset(
      retia::tkg::GenerateSynthetic(retia::tkg::SyntheticConfig::Icews14Like()));
  static retia::core::RetiaModel* model = [] {
    retia::core::RetiaConfig config;
    config.num_entities = ds->num_entities();
    config.num_relations = ds->num_relations();
    config.dim = 32;
    config.history_len = 8;
    auto* m = new retia::core::RetiaModel(config);
    m->SetTraining(false);
    return m;
  }();
  std::vector<int64_t> history;
  for (int64_t t = 0; t < 8; ++t) history.push_back(t);
  RunThreadSweep(state, "interop_evolve", [&] {
    retia::graph::GraphCache cache(ds);
    return model->Evolve(cache, history).back().entities;
  });
}
BENCHMARK(BM_InterOpTimestepSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
