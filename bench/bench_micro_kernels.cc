// Micro-benchmarks of the tensor/graph kernels the RETIA pipeline is built
// from (google-benchmark). These are not a paper table; they document the
// substrate's throughput and make kernel-level regressions visible.

#include <benchmark/benchmark.h>

#include "core/rgcn.h"
#include "graph/graph_cache.h"
#include "tensor/ops.h"
#include "tkg/synthetic.h"
#include "util/rng.h"

namespace {

using retia::tensor::Tensor;

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  retia::util::Rng rng(seed);
  Tensor t = Tensor::Zeros(std::move(shape));
  for (int64_t i = 0; i < t.NumElements(); ++i)
    t.Data()[i] = rng.Uniform(-1.0f, 1.0f);
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({n, n}, 1);
  Tensor b = RandomTensor({n, n}, 2);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::MatMul(a, b).Data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulTransposeB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor({256, 32}, 3);   // queries x d
  Tensor b = RandomTensor({n, 32}, 4);     // candidates x d
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::MatMulTransposeB(a, b).Data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * n * 32);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(256)->Arg(1024);

void BM_GatherScatter(benchmark::State& state) {
  const int64_t edges = state.range(0);
  Tensor nodes = RandomTensor({500, 32}, 5);
  retia::util::Rng rng(6);
  std::vector<int64_t> idx(edges);
  for (auto& i : idx) i = rng.UniformInt(0, 499);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor g = retia::tensor::GatherRows(nodes, idx);
    benchmark::DoNotOptimize(
        retia::tensor::ScatterAddRows(g, idx, 500).Data());
  }
  state.SetItemsProcessed(state.iterations() * edges * 32);
}
BENCHMARK(BM_GatherScatter)->Arg(200)->Arg(2000);

void BM_Softmax(benchmark::State& state) {
  Tensor a = RandomTensor({128, state.range(0)}, 7);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(retia::tensor::Softmax(a).Data());
  }
}
BENCHMARK(BM_Softmax)->Arg(300)->Arg(3000);

void BM_HypergraphConstruction(benchmark::State& state) {
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(
      retia::tkg::SyntheticConfig::Icews18Like());
  for (auto _ : state) {
    retia::graph::Subgraph g(ds.FactsAt(0), ds.num_entities(),
                             ds.num_relations());
    retia::graph::HyperSubgraph hg(g);
    benchmark::DoNotOptimize(hg.num_edges());
  }
}
BENCHMARK(BM_HypergraphConstruction);

void BM_EntityRgcnLayerForward(benchmark::State& state) {
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(
      retia::tkg::SyntheticConfig::Icews14Like());
  retia::graph::Subgraph g(ds.FactsAt(0), ds.num_entities(),
                           ds.num_relations());
  retia::util::Rng rng(8);
  retia::core::EntityRgcnLayer layer(32, 2 * ds.num_relations(), 2, 0.0f,
                                     &rng);
  layer.SetTraining(false);
  Tensor nodes = RandomTensor({ds.num_entities(), 32}, 9);
  Tensor rels = RandomTensor({2 * ds.num_relations(), 32}, 10);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(nodes, rels, g, &rng).Data());
  }
}
BENCHMARK(BM_EntityRgcnLayerForward);

void BM_RelationRgcnLayerForward(benchmark::State& state) {
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(
      retia::tkg::SyntheticConfig::Icews14Like());
  retia::graph::Subgraph g(ds.FactsAt(0), ds.num_entities(),
                           ds.num_relations());
  retia::graph::HyperSubgraph hg(g);
  retia::util::Rng rng(11);
  retia::core::RelationRgcnLayer layer(32, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor rels = RandomTensor({2 * ds.num_relations(), 32}, 12);
  Tensor hypers = RandomTensor({8, 32}, 13);
  retia::tensor::NoGradGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(rels, hypers, hg, &rng).Data());
  }
}
BENCHMARK(BM_RelationRgcnLayerForward);

}  // namespace

BENCHMARK_MAIN();
