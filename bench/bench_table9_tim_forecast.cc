// Table IX: role of the TIM in the forecasting process on the YAGO and
// ICEWS14 test sets (entity and relation MRR / Hits@10, after online
// continuous training).
//
// Paper finding: removing the TIM (severing the communication channels
// between the EAM and the RAM) hurts both tasks, catastrophically so for
// relation forecasting on YAGO (98.91 -> 69.23).

#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using retia::bench::ResultsCache;
using retia::bench::RunResult;
using retia::util::TablePrinter;

struct PaperRow {
  double e_mrr, e_h10, r_mrr, r_h10;
};
const std::map<std::string, std::map<std::string, PaperRow>> kPaper = {
    {"YAGO-like",
     {{"wo. TIM", {66.27, 85.68, 69.23, 86.49}},
      {"w. TIM", {67.58, 88.06, 98.91, 99.93}}}},
    {"ICEWS14-like",
     {{"wo. TIM", {42.61, 63.09, 36.44, 57.77}},
      {"w. TIM", {45.29, 66.06, 42.05, 73.65}}}},
};

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table IX — Role of the TIM in the forecasting process (YAGO, "
      "ICEWS14 test sets)",
      "Paper: w. TIM beats wo. TIM on every metric; the relation task "
      "suffers most without it.");
  ResultsCache cache;
  bool all_pass = true;
  for (const auto& profile :
       {retia::tkg::SyntheticConfig::YagoLike(),
        retia::tkg::SyntheticConfig::Icews14Like()}) {
    std::cout << "\n--- " << profile.name << " ---\n";
    RunResult without = retia::bench::RunEvolution(profile, "retia_wo_tim", cache);
    RunResult with = retia::bench::RunEvolution(profile, "retia", cache);
    TablePrinter table({"Module", "Entity MRR (paper)", "Entity H@10 (paper)",
                        "Relation MRR (paper)"});
    const PaperRow& p_wo = kPaper.at(profile.name).at("wo. TIM");
    const PaperRow& p_w = kPaper.at(profile.name).at("w. TIM");
    table.AddRow({"wo. TIM",
                  TablePrinter::Num(without.online_entity_mrr) + " (" +
                      TablePrinter::Num(p_wo.e_mrr) + ")",
                  TablePrinter::Num(without.online_entity_h10) + " (" +
                      TablePrinter::Num(p_wo.e_h10) + ")",
                  TablePrinter::Num(without.online_relation_mrr) + " (" +
                      TablePrinter::Num(p_wo.r_mrr) + ")"});
    table.AddRow({"w. TIM",
                  TablePrinter::Num(with.online_entity_mrr) + " (" +
                      TablePrinter::Num(p_w.e_mrr) + ")",
                  TablePrinter::Num(with.online_entity_h10) + " (" +
                      TablePrinter::Num(p_w.e_h10) + ")",
                  TablePrinter::Num(with.online_relation_mrr) + " (" +
                      TablePrinter::Num(p_w.r_mrr) + ")"});
    table.Print(std::cout);
    const bool relation_gain =
        with.online_relation_mrr > without.online_relation_mrr;
    const bool entity_gain =
        with.online_entity_mrr >= without.online_entity_mrr * 0.98;
    std::cout << "checks: TIM improves relation MRR: "
              << (relation_gain ? "PASS" : "FAIL")
              << " | TIM does not hurt entity MRR: "
              << (entity_gain ? "PASS" : "FAIL") << "\n";
    all_pass = all_pass && relation_gain && entity_gain;
  }
  std::cout << "\noverall: " << (all_pass ? "PASS" : "FAIL") << "\n";
  return 0;
}
