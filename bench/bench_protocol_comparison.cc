// Evaluation-protocol ablation (Sec. IV-A3 discussion): raw setting vs the
// time-aware filtered setting.
//
// The paper argues the time-aware filter handles one-to-many facts crudely
// and "tends to obtain better results", and therefore reports raw metrics.
// This driver quantifies the gap on one trained RETIA model: filtered
// metrics must dominate raw metrics, with the gap coming entirely from
// queries that conflict with other true facts at the same timestamp.

#include <iostream>

#include "bench_common.h"
#include "core/retia.h"
#include "nn/checkpoint.h"
#include "train/trainer.h"
#include "util/table_printer.h"

int main() {
  retia::bench::PrintHeader(
      "Protocol ablation — raw vs time-aware filtered evaluation "
      "(YAGO-like, RETIA)",
      "Paper (Sec. IV-A3): the time-aware filter removes conflicting true "
      "candidates and thus reports higher numbers; raw is stricter.");
  const retia::tkg::SyntheticConfig profile =
      retia::tkg::SyntheticConfig::YagoLike();
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(profile);
  const retia::bench::BenchParams p = retia::bench::ParamsFor(profile.name);

  retia::core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = p.dim;
  config.history_len = p.history_len;
  config.conv_kernels = p.conv_kernels;
  retia::core::RetiaModel model(config);
  retia::graph::GraphCache cache(&ds);
  retia::train::TrainConfig tc;
  tc.max_epochs = p.max_epochs;
  tc.patience = p.patience;
  retia::train::Trainer trainer(&model, &cache, tc);
  std::cerr << "[bench] training RETIA once for the protocol comparison...\n";
  trainer.TrainGeneral();

  retia::eval::EvalOptions raw;
  retia::eval::EvalResult raw_result =
      trainer.Evaluate(ds.test_times(), /*online=*/false, raw);
  retia::eval::EvalOptions filtered;
  filtered.time_aware_filter = true;
  retia::eval::EvalResult filtered_result =
      trainer.Evaluate(ds.test_times(), /*online=*/false, filtered);

  retia::util::TablePrinter table(
      {"Protocol", "Entity MRR", "Entity H@1", "Entity H@10",
       "Relation MRR"});
  table.AddRow({"raw (paper's choice)",
                retia::util::TablePrinter::Num(raw_result.entity.Mrr()),
                retia::util::TablePrinter::Num(raw_result.entity.Hits1()),
                retia::util::TablePrinter::Num(raw_result.entity.Hits10()),
                retia::util::TablePrinter::Num(raw_result.relation.Mrr())});
  table.AddRow(
      {"time-aware filtered",
       retia::util::TablePrinter::Num(filtered_result.entity.Mrr()),
       retia::util::TablePrinter::Num(filtered_result.entity.Hits1()),
       retia::util::TablePrinter::Num(filtered_result.entity.Hits10()),
       retia::util::TablePrinter::Num(filtered_result.relation.Mrr())});
  table.Print(std::cout);

  const bool dominates =
      filtered_result.entity.Mrr() >= raw_result.entity.Mrr() &&
      filtered_result.relation.Mrr() >= raw_result.relation.Mrr();
  std::cout << "check: filtered metrics dominate raw metrics (the paper's "
               "reason for reporting raw): "
            << (dominates ? "PASS" : "FAIL") << "\n";
  return 0;
}
