// Fig. 6: role of relation modeling in *entity* forecasting on ICEWS18.
//
// The relation-modeling depth sweep: "wo. RM" (initial relation embeddings
// straight to the decoder), "w. MP" (mean-pooled adjacent entities),
// "w. MP+LSTM" (the RE-GCN/TiRGN level, which the paper identifies as
// suffering from the "message islands" problem) and "w. MP+LSTM+Agg" (full
// RETIA: messages cross the one-hop gap through the hyperrelation
// subgraph).

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace retia::bench {

int RunRelationModelingFigure(bool entity_task, const std::string& figure) {
  const tkg::SyntheticConfig profile = tkg::SyntheticConfig::Icews18Like();
  PrintHeader(
      figure + " — Role of relation modeling in " +
          (entity_task ? std::string("entity") : std::string("relation")) +
          " forecasting (" + profile.name + ")",
      entity_task
          ? "Paper: each relation-modeling level adds entity-forecasting "
            "accuracy; the Agg step (RAM) tops the sweep."
          : "Paper: 'wo. RM' is fatal for relation forecasting; the Agg "
            "step gives the final improvement over the RE-GCN level.");
  ResultsCache cache;
  const std::vector<std::pair<std::string, std::string>> sweep = {
      {"wo. RM", "retia_rm_none"},
      {"w. MP", "retia_rm_mp"},
      {"w. MP+LSTM", "retia_rm_mp_lstm"},
      {"w. MP+LSTM+Agg", "retia"},
  };
  util::TablePrinter table({"Variant", "MRR", "Hits@1", "Hits@3", "Hits@10"});
  std::map<std::string, RunResult> results;
  for (const auto& [label, variant] : sweep) {
    RunResult r = RunEvolution(profile, variant, cache);
    results[label] = r;
    if (entity_task) {
      table.AddRow({label, util::TablePrinter::Num(r.online_entity_mrr),
                    util::TablePrinter::Num(r.online_entity_h1),
                    util::TablePrinter::Num(r.online_entity_h3),
                    util::TablePrinter::Num(r.online_entity_h10)});
    } else {
      table.AddRow({label, util::TablePrinter::Num(r.online_relation_mrr),
                    "-", "-", "-"});
    }
  }
  table.Print(std::cout);
  auto metric = [&](const std::string& label) {
    return entity_task ? results[label].online_entity_mrr
                       : results[label].online_relation_mrr;
  };
  const bool agg_beats_regcn_level =
      metric("w. MP+LSTM+Agg") > metric("w. MP+LSTM");
  const bool modeled_beats_unmodeled =
      metric("w. MP+LSTM+Agg") > metric("wo. RM");
  std::cout << "checks: Agg (RETIA) > MP+LSTM (RE-GCN level): "
            << (agg_beats_regcn_level ? "PASS" : "FAIL")
            << " | full modeling > no relation modeling: "
            << (modeled_beats_unmodeled ? "PASS" : "FAIL") << "\n";
  if (!entity_task) {
    const bool worm_fatal = metric("wo. RM") < metric("w. MP+LSTM+Agg") * 0.5;
    std::cout << "check: 'wo. RM' loses most of the relation forecasting "
                 "ability: "
              << (worm_fatal ? "PASS" : "FAIL") << "\n";
  }
  return 0;
}

}  // namespace retia::bench

#ifndef RETIA_FIG7_MAIN
int main() {
  return retia::bench::RunRelationModelingFigure(/*entity_task=*/true,
                                                 "Fig. 6");
}
#endif
