// Table V: details of the TKG datasets. Prints the statistics of the five
// scaled synthetic stand-ins next to the paper's original numbers.

#include <iostream>

#include "bench_common.h"
#include "tkg/analysis.h"
#include "util/table_printer.h"

namespace {

struct PaperRow {
  const char* name;
  int64_t entities, relations, train, valid, test;
  const char* granularity;
};

constexpr PaperRow kPaper[] = {
    {"ICEWS14", 6869, 230, 74845, 8514, 7371, "24 hours"},
    {"ICEWS05-15", 10094, 251, 368868, 46302, 46159, "24 hours"},
    {"ICEWS18", 23033, 256, 373018, 45995, 49545, "24 hours"},
    {"YAGO", 10623, 10, 161540, 19523, 20026, "1 year"},
    {"WIKI", 12554, 24, 539286, 67538, 63110, "1 year"},
};

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table V — Details of the TKG datasets",
      "Synthetic stand-ins scale every count down (~20-50x) while keeping "
      "the cross-dataset ordering.");
  retia::util::TablePrinter table({"#Dataset", "#Entities", "#Relations",
                                   "#Training", "#Validation", "#Test",
                                   "#Granularity"});
  const auto profiles = retia::bench::AllProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    const PaperRow& p = kPaper[i];
    table.AddRow({std::string(p.name) + " (paper)", std::to_string(p.entities),
                  std::to_string(p.relations), std::to_string(p.train),
                  std::to_string(p.valid), std::to_string(p.test),
                  p.granularity});
    retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(profiles[i]);
    retia::tkg::DatasetStats s = ds.Stats();
    table.AddRow({s.name, std::to_string(s.num_entities),
                  std::to_string(s.num_relations), std::to_string(s.num_train),
                  std::to_string(s.num_valid), std::to_string(s.num_test),
                  s.granularity});
  }
  table.Print(std::cout);

  // Temporal-structure statistics (retia::tkg::AnalyzeTemporal): these are
  // the properties that drive the paper's cross-dataset contrasts.
  std::cout << "\nTemporal structure of the stand-ins:\n";
  retia::util::TablePrinter analysis(
      {"#Dataset", "repetition", "overlap(t,t+1)", "rel-drift",
       "rel-entropy(bits)", "facts/ts"});
  for (const auto& profile : profiles) {
    retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(profile);
    retia::tkg::TemporalStats ts = retia::tkg::AnalyzeTemporal(ds);
    analysis.AddRow({ds.name(),
                     retia::util::TablePrinter::Num(ts.repetition_rate, 3),
                     retia::util::TablePrinter::Num(ts.consecutive_overlap, 3),
                     retia::util::TablePrinter::Num(ts.relation_drift_rate, 3),
                     retia::util::TablePrinter::Num(ts.relation_entropy, 2),
                     retia::util::TablePrinter::Num(
                         ts.mean_facts_per_timestamp, 1)});
  }
  analysis.Print(std::cout);

  // Qualitative checks mirroring the paper's orderings.
  const auto i14 = retia::tkg::GenerateSynthetic(profiles[0]).Stats();
  const auto i18 = retia::tkg::GenerateSynthetic(profiles[2]).Stats();
  const auto yago = retia::tkg::GenerateSynthetic(profiles[3]).Stats();
  std::cout << "checks: ICEWS18 largest entity vocabulary: "
            << (i18.num_entities > i14.num_entities &&
                        i18.num_entities > yago.num_entities
                    ? "PASS"
                    : "FAIL")
            << " | YAGO fewest relations: "
            << (yago.num_relations <= 10 ? "PASS" : "FAIL") << "\n";
  return 0;
}
