// Fig. 5: capturing the positional association constraints via
// hyperrelations (YAGO and ICEWS14).
//
// Sweep of the hyperrelation-modeling depth that the TIM delivers to the
// RAM: "wo. HRM" (static initial hyperrelation embeddings), "w. HMP"
// (hyper mean pooling) and "w. HMP+HLSTM" (full model). Paper finding:
// wo. HRM is roughly on par with w. HMP, and adding the hyper LSTM (the
// chronological evolution of the positional association constraints) gives
// a further improvement on both tasks.

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  retia::bench::PrintHeader(
      "Fig. 5 — Capturing the positional association constraints via "
      "hyperrelations",
      "Paper: w.HMP+HLSTM > {w.HMP, wo.HRM} on entity and relation MRR; "
      "temporal dependencies matter more than intra-subgraph structure.");
  retia::bench::ResultsCache cache;
  const std::vector<std::pair<std::string, std::string>> sweep = {
      {"wo. HRM", "retia_hyper_none"},
      {"w. HMP", "retia_hyper_hmp"},
      {"w. HMP+HLSTM", "retia"},
  };
  bool all_pass = true;
  for (const auto& profile : {retia::tkg::SyntheticConfig::YagoLike(),
                              retia::tkg::SyntheticConfig::Icews14Like()}) {
    std::cout << "\n--- " << profile.name << " ---\n";
    retia::util::TablePrinter table(
        {"Variant", "Entity MRR", "Entity H@10", "Relation MRR"});
    std::map<std::string, retia::bench::RunResult> results;
    for (const auto& [label, variant] : sweep) {
      retia::bench::RunResult r =
          retia::bench::RunEvolution(profile, variant, cache);
      results[label] = r;
      table.AddRow({label, retia::util::TablePrinter::Num(r.online_entity_mrr),
                    retia::util::TablePrinter::Num(r.online_entity_h10),
                    retia::util::TablePrinter::Num(r.online_relation_mrr)});
    }
    table.Print(std::cout);
    const bool hlstm_helps_entity =
        results["w. HMP+HLSTM"].online_entity_mrr >=
        std::min(results["w. HMP"].online_entity_mrr,
                 results["wo. HRM"].online_entity_mrr);
    const bool hlstm_helps_relation =
        results["w. HMP+HLSTM"].online_relation_mrr >=
        std::min(results["w. HMP"].online_relation_mrr,
                 results["wo. HRM"].online_relation_mrr);
    std::cout << "checks: hyper LSTM >= weaker variants (entity): "
              << (hlstm_helps_entity ? "PASS" : "FAIL")
              << " | (relation): "
              << (hlstm_helps_relation ? "PASS" : "FAIL") << "\n";
    all_pass = all_pass && hlstm_helps_entity && hlstm_helps_relation;
  }
  std::cout << "\noverall: " << (all_pass ? "PASS" : "FAIL") << "\n";
  return 0;
}
