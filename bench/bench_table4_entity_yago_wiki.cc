// Table IV: entity forecasting on YAGO and WIKI (raw MRR / Hits@3 / Hits@10).
//
// The paper's headline here: yearly-granularity datasets are dominated by
// persistent facts, so evolution models score far higher than on ICEWS, and
// RETIA's relation modeling gives it a wide margin (especially on WIKI).

#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using retia::bench::ResultsCache;
using retia::bench::RunResult;
using retia::util::TablePrinter;

struct MethodSpec {
  std::string name;
  std::string runner;
  bool online_protocol = false;
};

const std::vector<MethodSpec> kMethods = {
    {"DistMult", "static:DistMult"},
    {"ConvE", "static:ConvE"},
    {"ComplEx", "static:ComplEx"},
    {"Conv-TransE", "static:Conv-TransE"},
    {"RotatE", "static:RotatE"},
    {"TTransE", "ttranse"},
    {"CyGNet", "cygnet"},
    {"RE-NET", "evo:renet"},
    {"xERTE", ""},
    {"RE-GCN", "evo:regcn"},
    {"TITer", ""},
    {"CEN", "evo:cen", true},
    {"TiRGN", "evo:tirgn"},
    {"RETIA", "evo:retia", true},
};

const std::map<std::string, std::map<std::string, double>> kPaperMrr = {
    {"YAGO-like",
     {{"DistMult", 44.05}, {"ConvE", 41.22}, {"ComplEx", 44.09},
      {"Conv-TransE", 46.67}, {"RotatE", 42.08}, {"TTransE", 26.10},
      {"CyGNet", 46.72}, {"RE-NET", 46.81}, {"xERTE", 64.29},
      {"RE-GCN", 63.07}, {"TITer", 64.97}, {"CEN", 63.39},
      {"TiRGN", 64.71}, {"RETIA", 67.58}}},
    {"WIKI-like",
     {{"DistMult", 27.96}, {"ConvE", 26.03}, {"ComplEx", 27.69},
      {"Conv-TransE", 30.89}, {"RotatE", 26.08}, {"TTransE", 20.66},
      {"CyGNet", 30.77}, {"RE-NET", 30.87}, {"xERTE", 52.85},
      {"RE-GCN", 51.53}, {"TITer", 57.36}, {"CEN", 51.98},
      {"TiRGN", 53.20}, {"RETIA", 70.11}}},
};

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table IV — Entity forecasting on YAGO and WIKI (raw metrics)",
      "Paper: evolution models far above static ones; RETIA best; absolute "
      "MRR much higher than on ICEWS.");
  ResultsCache cache;
  for (const auto& profile : retia::bench::YagoWikiProfiles()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    TablePrinter table({"Method", "paper MRR", "MRR", "Hits@3", "Hits@10"});
    double retia = 0, regcn = 0, conv_transe = 0;
    for (const MethodSpec& spec : kMethods) {
      const double paper = kPaperMrr.at(profile.name).at(spec.name);
      if (spec.runner.empty()) {
        table.AddRow({spec.name + " (not reproduced)",
                      TablePrinter::Num(paper), "-", "-", "-"});
        continue;
      }
      RunResult r;
      if (spec.runner.rfind("static:", 0) == 0) {
        r = retia::bench::RunStatic(profile, spec.runner.substr(7), cache);
      } else if (spec.runner == "ttranse") {
        r = retia::bench::RunTTransE(profile, cache);
      } else if (spec.runner == "cygnet") {
        r = retia::bench::RunCygnet(profile, cache);
      } else {
        r = retia::bench::RunEvolution(profile, spec.runner.substr(4), cache);
      }
      const double mrr =
          spec.online_protocol ? r.online_entity_mrr : r.offline_entity_mrr;
      const double h3 =
          spec.online_protocol ? r.online_entity_h3 : r.offline_entity_h3;
      const double h10 =
          spec.online_protocol ? r.online_entity_h10 : r.offline_entity_h10;
      table.AddRow({spec.name, TablePrinter::Num(paper),
                    TablePrinter::Num(mrr), TablePrinter::Num(h3),
                    TablePrinter::Num(h10)});
      if (spec.name == "RETIA") retia = mrr;
      if (spec.name == "RE-GCN") regcn = mrr;
      if (spec.name == "Conv-TransE") conv_transe = mrr;
    }
    table.Print(std::cout);
    std::cout << "qualitative checks: RETIA > RE-GCN: "
              << (retia > regcn ? "PASS" : "FAIL")
              << " | RE-GCN > Conv-TransE (evolution beats static): "
              << (regcn > conv_transe ? "PASS" : "FAIL") << "\n";
  }
  return 0;
}
