// Table III: entity forecasting on the ICEWS-family datasets (raw metrics).
//
// Reproduces the method x metric grid for every baseline family implemented
// in this repository; methods the paper lists but that are out of scope
// (xERTE, CluSTeR, TITer, TLogic, TiRGN, RE-NET, HyTE, TA-DistMult, R-GCN)
// are printed with their paper MRR and "-" for measured values, so the
// table keeps the paper's shape.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table_printer.h"

namespace {

using retia::bench::ResultsCache;
using retia::bench::RunResult;
using retia::util::TablePrinter;

struct MethodSpec {
  std::string name;
  // empty kind => not reproduced, print paper numbers only.
  std::string runner;  // "static:<Kind>", "ttranse", "cygnet", "evo:<variant>"
  bool online_protocol = false;  // report the online-evaluation numbers
};

const std::vector<MethodSpec> kMethods = {
    {"DistMult", "static:DistMult"},
    {"ConvE", "static:ConvE"},
    {"ComplEx", "static:ComplEx"},
    {"Conv-TransE", "static:Conv-TransE"},
    {"RotatE", "static:RotatE"},
    {"TTransE", "ttranse"},
    {"CyGNet", "cygnet"},
    {"RE-NET", "evo:renet"},
    {"xERTE", ""},
    {"CluSTeR", ""},
    {"RE-GCN", "evo:regcn"},
    {"TITer", ""},
    {"TLogic", ""},
    {"CEN", "evo:cen", true},
    {"TiRGN", "evo:tirgn"},
    {"RETIA", "evo:retia", true},
};

// Paper Table III MRR values, for the side-by-side comparison column.
const std::map<std::string, std::map<std::string, double>> kPaperMrr = {
    {"ICEWS14-like",
     {{"DistMult", 20.32}, {"ConvE", 30.30},   {"ComplEx", 22.61},
      {"Conv-TransE", 31.50}, {"RotatE", 25.71}, {"TTransE", 12.86},
      {"CyGNet", 34.68},   {"RE-NET", 35.77},  {"xERTE", 32.23},
      {"CluSTeR", 46.00},  {"RE-GCN", 41.50},  {"TITer", 40.90},
      {"TLogic", 41.80},   {"CEN", 41.64},     {"TiRGN", 43.88},
      {"RETIA", 45.29}}},
    {"ICEWS05-15-like",
     {{"DistMult", 19.91}, {"ConvE", 31.40},   {"ComplEx", 20.26},
      {"Conv-TransE", 30.28}, {"RotatE", 19.01}, {"TTransE", 16.53},
      {"CyGNet", 35.46},   {"RE-NET", 36.86},  {"xERTE", 38.07},
      {"CluSTeR", 44.60},  {"RE-GCN", 46.41},  {"TITer", 46.62},
      {"TLogic", 45.99},   {"CEN", 49.57},     {"TiRGN", 48.72},
      {"RETIA", 52.17}}},
    {"ICEWS18-like",
     {{"DistMult", 13.86}, {"ConvE", 22.81},   {"ComplEx", 15.45},
      {"Conv-TransE", 23.22}, {"RotatE", 14.53}, {"TTransE", 8.44},
      {"CyGNet", 24.98},   {"RE-NET", 26.17},  {"xERTE", 27.98},
      {"CluSTeR", 32.30},  {"RE-GCN", 30.55},  {"TITer", 28.44},
      {"TLogic", 28.41},   {"CEN", 29.70},     {"TiRGN", 32.06},
      {"RETIA", 34.16}}},
};

bool Run(const MethodSpec& spec, const retia::tkg::SyntheticConfig& profile,
         ResultsCache& cache, RunResult* out) {
  if (spec.runner.empty()) return false;
  if (spec.runner.rfind("static:", 0) == 0) {
    *out = retia::bench::RunStatic(profile, spec.runner.substr(7), cache);
  } else if (spec.runner == "ttranse") {
    *out = retia::bench::RunTTransE(profile, cache);
  } else if (spec.runner == "cygnet") {
    *out = retia::bench::RunCygnet(profile, cache);
  } else {
    *out = retia::bench::RunEvolution(profile, spec.runner.substr(4), cache);
  }
  return true;
}

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table III — Entity forecasting on ICEWS14 / ICEWS05-15 / ICEWS18 "
      "(raw metrics)",
      "Paper: RETIA best on all three; RE-GCN-family > copy/static; "
      "interpolation (TTransE) worst.");
  ResultsCache cache;
  for (const auto& profile : retia::bench::IcewsProfiles()) {
    std::cout << "\n--- " << profile.name << " ---\n";
    double retia_mrr = 0.0, regcn_mrr = 0.0, static_best = 0.0,
           ttranse_mrr = 0.0;
    TablePrinter table({"Method", "paper MRR", "MRR", "Hits@1", "Hits@3",
                        "Hits@10"});
    for (const MethodSpec& spec : kMethods) {
      const auto& paper = kPaperMrr.at(profile.name);
      RunResult r;
      if (!Run(spec, profile, cache, &r)) {
        table.AddRow({spec.name + " (not reproduced)",
                      TablePrinter::Num(paper.at(spec.name)), "-", "-", "-",
                      "-"});
        continue;
      }
      const double mrr =
          spec.online_protocol ? r.online_entity_mrr : r.offline_entity_mrr;
      const double h1 =
          spec.online_protocol ? r.online_entity_h1 : r.offline_entity_h1;
      const double h3 =
          spec.online_protocol ? r.online_entity_h3 : r.offline_entity_h3;
      const double h10 =
          spec.online_protocol ? r.online_entity_h10 : r.offline_entity_h10;
      table.AddRow({spec.name, TablePrinter::Num(paper.at(spec.name)),
                    TablePrinter::Num(mrr), TablePrinter::Num(h1),
                    TablePrinter::Num(h3), TablePrinter::Num(h10)});
      if (spec.name == "RETIA") retia_mrr = mrr;
      if (spec.name == "RE-GCN") regcn_mrr = mrr;
      if (spec.name == "TTransE") ttranse_mrr = mrr;
      if (spec.runner.rfind("static:", 0) == 0)
        static_best = std::max(static_best, mrr);
    }
    table.Print(std::cout);
    std::cout << "note: CyGNet overperforms its paper rank here because the\n"
                 "synthetic recurring facts repeat *exactly*, which is ideal\n"
                 "for pure copying; real ICEWS recurrences are noisier.\n";
    std::cout << "qualitative checks: RETIA > RE-GCN: "
              << (retia_mrr > regcn_mrr ? "PASS" : "FAIL")
              << " | RE-GCN > best static: "
              << (regcn_mrr > static_best ? "PASS" : "FAIL")
              << " | TTransE weakest family: "
              << (ttranse_mrr < static_best ? "PASS" : "FAIL") << "\n";
  }
  return 0;
}
