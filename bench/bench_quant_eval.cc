// Quantized-vs-f32 serving accuracy (docs/QUANTIZATION.md): trains one
// RETIA model, then evaluates the test split twice through the standard
// per-timestamp protocol — once decoding entities with the f32 frozen path
// and once with the int8 quantized path serving uses — and reports the
// MRR / Hits@k deltas. Both passes score the *same* evolved states
// (memoized per timestamp), so every delta is attributable to int8
// candidate quantization alone. Relations are scored f32 in both passes,
// mirroring the serve engine's carve-out.
//
// The check mirrors the acceptance criterion recorded in EXPERIMENTS.md:
// the quantized entity MRR must stay within 1.0 point (x100 scale) of f32.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <map>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/retia.h"
#include "eval/evaluator.h"
#include "quant/quant.h"
#include "tensor/tensor.h"
#include "train/trainer.h"
#include "util/table_printer.h"

int main() {
  retia::bench::PrintHeader(
      "Quantized serving ablation — int8 vs f32 entity decode (YAGO-like, "
      "RETIA)",
      "docs/QUANTIZATION.md: per-op error bounds predict near-zero metric "
      "movement; this driver measures it end to end.");
  const retia::tkg::SyntheticConfig profile =
      retia::tkg::SyntheticConfig::YagoLike();
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(profile);
  const retia::bench::BenchParams p = retia::bench::ParamsFor(profile.name);

  retia::core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = p.dim;
  config.history_len = p.history_len;
  config.conv_kernels = p.conv_kernels;
  retia::core::RetiaModel model(config);
  retia::graph::GraphCache cache(&ds);
  retia::train::TrainConfig tc;
  tc.max_epochs = p.max_epochs;
  tc.patience = p.patience;
  retia::train::Trainer trainer(&model, &cache, tc);
  std::cerr << "[bench] training RETIA once for the quantization ablation...\n";
  trainer.TrainGeneral();

  model.SetTraining(false);
  using StepState = retia::core::EvolutionModel::StepState;

  // Both passes share one evolved state per timestamp; the quantized pass
  // additionally quantizes each state's entity table once, exactly as the
  // serve engine's snapshot entry does.
  std::map<int64_t, std::vector<StepState>> states_by_time;
  std::map<int64_t, std::vector<retia::quant::QuantizedRows>> qcands_by_time;
  auto states_for = [&](int64_t t) -> const std::vector<StepState>& {
    auto it = states_by_time.find(t);
    if (it == states_by_time.end()) {
      retia::tensor::NoGradGuard guard;
      it = states_by_time
               .emplace(t, model.Evolve(
                               cache, cache.HistoryBefore(t, p.history_len)))
               .first;
    }
    return it->second;
  };
  auto qcands_for =
      [&](int64_t t) -> const std::vector<retia::quant::QuantizedRows>& {
    auto it = qcands_by_time.find(t);
    if (it == qcands_by_time.end()) {
      const std::vector<StepState>& states = states_for(t);
      std::vector<retia::quant::QuantizedRows> q;
      q.reserve(states.size());
      for (const StepState& s : states) {
        q.push_back(retia::quant::QuantizeTensorRows(s.entities));
      }
      it = qcands_by_time.emplace(t, std::move(q)).first;
    }
    return it->second;
  };

  retia::eval::RelationScoreFn relation_fn =
      [&](int64_t t,
          const std::vector<std::pair<int64_t, int64_t>>& queries) {
        retia::tensor::NoGradGuard guard;
        return model.ScoreRelationsFrozen(states_for(t), queries);
      };
  retia::eval::ObjectScoreFn f32_fn =
      [&](int64_t t,
          const std::vector<std::pair<int64_t, int64_t>>& queries) {
        retia::tensor::NoGradGuard guard;
        return model.ScoreObjectsFrozen(states_for(t), queries);
      };
  retia::eval::ObjectScoreFn int8_fn =
      [&](int64_t t,
          const std::vector<std::pair<int64_t, int64_t>>& queries) {
        retia::tensor::NoGradGuard guard;
        return model.ScoreObjectsFrozenQuantized(states_for(t), qcands_for(t),
                                                 queries);
      };

  const retia::eval::EvalOptions options;
  retia::eval::EvalResult f32 = retia::eval::EvaluateTimes(
      ds, ds.test_times(), f32_fn, relation_fn, options);
  retia::eval::EvalResult int8 = retia::eval::EvaluateTimes(
      ds, ds.test_times(), int8_fn, relation_fn, options);

  retia::util::TablePrinter table({"Entity decode", "Entity MRR",
                                   "Entity H@1", "Entity H@3", "Entity H@10",
                                   "Relation MRR"});
  table.AddRow({"f32 frozen",
                retia::util::TablePrinter::Num(f32.entity.Mrr()),
                retia::util::TablePrinter::Num(f32.entity.Hits1()),
                retia::util::TablePrinter::Num(f32.entity.Hits3()),
                retia::util::TablePrinter::Num(f32.entity.Hits10()),
                retia::util::TablePrinter::Num(f32.relation.Mrr())});
  table.AddRow({"int8 quantized",
                retia::util::TablePrinter::Num(int8.entity.Mrr()),
                retia::util::TablePrinter::Num(int8.entity.Hits1()),
                retia::util::TablePrinter::Num(int8.entity.Hits3()),
                retia::util::TablePrinter::Num(int8.entity.Hits10()),
                retia::util::TablePrinter::Num(int8.relation.Mrr())});
  // TablePrinter::Num renders negatives as "n/a"; deltas need the sign.
  auto signed_num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f", v);
    return std::string(buf);
  };
  table.AddRow({"delta (int8 - f32)",
                signed_num(int8.entity.Mrr() - f32.entity.Mrr()),
                signed_num(int8.entity.Hits1() - f32.entity.Hits1()),
                signed_num(int8.entity.Hits3() - f32.entity.Hits3()),
                signed_num(int8.entity.Hits10() - f32.entity.Hits10()),
                signed_num(int8.relation.Mrr() - f32.relation.Mrr())});
  table.Print(std::cout);

  const double mrr_delta = int8.entity.Mrr() - f32.entity.Mrr();
  const bool within = mrr_delta >= -1.0 && mrr_delta <= 1.0;
  std::cout << "check: |entity MRR delta| <= 1.0 point under int8 decode: "
            << (within ? "PASS" : "FAIL") << " (delta " << mrr_delta
            << ")\n";
  return within ? 0 : 1;
}
