// Serving throughput: QPS of retia::serve::ServeEngine at 1/2/4/8 worker
// threads with the prediction cache on and off, under a fixed 8-client
// workload with a skewed (repeating) query mix. Also cross-checks that
// every multi-threaded answer is bit-identical to the single-threaded
// reference, which is the correctness contract of the batched decoder.
//
// Unlike the paper-table benches this one measures the serving subsystem,
// not model quality, so it serves an untrained (randomly initialised)
// model: decode cost is independent of the parameter values.

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/retia.h"
#include "graph/graph_cache.h"
#include "serve/engine.h"
#include "tkg/synthetic.h"

namespace retia {
namespace {

struct Workload {
  // queries[i] = (s, r) entity query; clients walk disjoint strides.
  std::vector<std::pair<int64_t, int64_t>> queries;
  int64_t t = 0;
};

// A skewed workload: kDistinct distinct queries, each repeated kRounds
// times, so with the cache on the steady state is mostly hits while every
// distinct query still pays one decode.
Workload MakeWorkload(const tkg::TkgDataset& dataset) {
  constexpr int64_t kDistinct = 600;
  constexpr int64_t kRounds = 6;
  Workload w;
  w.t = dataset.test_times().front();
  const int64_t n = dataset.num_entities();
  const int64_t rel_aug = 2 * dataset.num_relations();
  for (int64_t round = 0; round < kRounds; ++round) {
    for (int64_t i = 0; i < kDistinct; ++i) {
      w.queries.emplace_back((i * 31) % n, (i * 17) % rel_aug);
    }
  }
  return w;
}

struct RunStats {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  double mean_batch = 0;
};

RunStats RunWorkload(core::RetiaModel* model, graph::GraphCache* cache,
                     const Workload& workload, int64_t num_threads,
                     bool enable_cache,
                     std::vector<serve::TopKResult>* answers,
                     int quantized_decode = 0) {
  serve::ServeConfig config;
  config.num_threads = num_threads;
  config.max_batch = 32;
  config.max_k = 10;
  config.enable_cache = enable_cache;
  config.quantized_decode = quantized_decode;
  serve::ServeEngine engine(model, cache, config);
  engine.Warmup(workload.t);  // pay evolution outside the measured window
  engine.ResetStats();

  constexpr int kClients = 8;
  answers->assign(workload.queries.size(), {});
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < workload.queries.size(); i += kClients) {
        (*answers)[i] = engine.TopK(workload.queries[i].first,
                                    workload.queries[i].second, workload.t,
                                    /*k=*/10);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  const serve::ServeStats stats = engine.Stats();
  return {stats.qps, stats.p50_latency_ms, stats.p99_latency_ms,
          stats.cache_hit_rate, stats.mean_batch_size};
}

bool BitIdentical(const std::vector<serve::TopKResult>& a,
                  const std::vector<serve::TopKResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].candidates != b[i].candidates) return false;
  }
  return true;
}

}  // namespace
}  // namespace retia

int main() {
  using namespace retia;
  bench::PrintHeader(
      "Serving throughput: worker scaling and prediction cache",
      "new subsystem (no paper analogue); QPS under an 8-client workload");

  // Scaled *up* from the demo sizes: with thousands of candidate entities
  // the [B, N] decode dominates the request overhead, which is the regime
  // a serving deployment lives in (and the regime where worker-thread
  // scaling is visible).
  tkg::SyntheticConfig data_config = tkg::SyntheticConfig::YagoLike();
  data_config.num_entities = 2000;
  data_config.facts_per_timestamp = 150;
  data_config.num_schemas = 400;
  const tkg::TkgDataset dataset = tkg::GenerateSynthetic(data_config);

  core::RetiaConfig model_config;
  model_config.num_entities = dataset.num_entities();
  model_config.num_relations = dataset.num_relations();
  model_config.dim = 48;
  model_config.history_len = 3;
  core::RetiaModel model(model_config);
  graph::GraphCache cache(&dataset);

  const Workload workload = MakeWorkload(dataset);
  std::cout << "workload: " << workload.queries.size()
            << " queries (600 distinct x 6 rounds), 8 client threads, "
               "max_batch 32, k=10\n\n";

  // Single-threaded, uncached reference answers for the identity check.
  std::vector<serve::TopKResult> reference;
  RunWorkload(&model, &cache, workload, /*num_threads=*/1,
              /*enable_cache=*/false, &reference);

  std::cout << std::left << std::setw(9) << "workers" << std::setw(8)
            << "cache" << std::right << std::setw(10) << "QPS"
            << std::setw(10) << "p50 ms" << std::setw(10) << "p99 ms"
            << std::setw(10) << "hit rate" << std::setw(12) << "mean batch"
            << std::setw(12) << "identical" << "\n";
  std::map<std::pair<bool, int64_t>, double> qps;
  for (const bool enable_cache : {false, true}) {
    for (const int64_t workers : {1, 2, 4, 8}) {
      std::vector<serve::TopKResult> answers;
      const RunStats stats = RunWorkload(&model, &cache, workload, workers,
                                         enable_cache, &answers);
      qps[{enable_cache, workers}] = stats.qps;
      std::cout << std::left << std::setw(9) << workers << std::setw(8)
                << (enable_cache ? "on" : "off") << std::right << std::fixed
                << std::setprecision(0) << std::setw(10) << stats.qps
                << std::setprecision(2) << std::setw(10) << stats.p50_ms
                << std::setw(10) << stats.p99_ms << std::setw(10)
                << stats.hit_rate << std::setw(12) << stats.mean_batch
                << std::setw(12)
                << (BitIdentical(answers, reference) ? "yes" : "NO") << "\n";
      if (!BitIdentical(answers, reference)) {
        std::cout << "ERROR: multi-threaded answers diverged from the "
                     "single-threaded reference\n";
        return 1;
      }
    }
  }

  const double cache_speedup = qps[{true, 1}] / qps[{false, 1}];
  std::cout << "\nprediction cache speedup (1 worker): " << std::fixed
            << std::setprecision(2) << cache_speedup << "x\n";

  // Quantized entity decode (docs/QUANTIZATION.md): same uncached
  // single-worker workload with the int8 candidate path forced on. Scores
  // are tolerance-bound rather than bit-equal to f32, so the comparison is
  // top-1 agreement plus QPS. The kernel-level speedup (and its gate)
  // lives in scripts/bench_kernels.sh; this row shows what survives
  // end-to-end once evolution, batching, and ranking overhead are in.
  {
    std::vector<serve::TopKResult> quant_answers;
    const RunStats quant_stats =
        RunWorkload(&model, &cache, workload, /*num_threads=*/1,
                    /*enable_cache=*/false, &quant_answers,
                    /*quantized_decode=*/1);
    size_t top1 = 0;
    for (size_t i = 0; i < quant_answers.size(); ++i) {
      if (!quant_answers[i].candidates.empty() &&
          !reference[i].candidates.empty() &&
          quant_answers[i].candidates[0].id == reference[i].candidates[0].id) {
        ++top1;
      }
    }
    std::cout << "int8 quantized decode (1 worker, cache off): "
              << std::setprecision(0) << quant_stats.qps << " QPS, "
              << std::setprecision(2)
              << quant_stats.qps / qps[{false, 1}] << "x vs f32, top-1 "
              << "agreement "
              << 100.0 * static_cast<double>(top1) /
                     static_cast<double>(quant_answers.size())
              << "%\n";
  }

  // Worker scaling is a statement about hardware parallelism: on a
  // single-core host every configuration is core-bound at the same QPS
  // (only latency changes), so the >2x target is only meaningful when at
  // least 4 cores are available to the process.
  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup = qps[{true, 4}] / qps[{true, 1}];
  std::cout << "cached-workload scaling 1 -> 4 workers: " << std::fixed
            << std::setprecision(2) << speedup << "x on " << cores
            << " core(s)";
  if (cores >= 4) {
    std::cout << (speedup > 2.0 ? " (PASS: > 2x)" : " (below 2x target)")
              << "\n";
    return speedup > 2.0 ? 0 : 1;
  }
  std::cout << " (scaling target needs >= 4 cores; skipped — "
               "bit-identity verified above)\n";
  return 0;
}
