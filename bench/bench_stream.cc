// Streaming staleness benchmark: how long after a fact arrives does it
// affect predictions? Drives a StreamPipeline over a synthetic event
// stream — ingest, per-window fine-tune, zero-downtime publish — and
// reports the per-fact arrival→publish staleness distribution (p50/p95),
// per-window fine-tune/publish cost, and the acceptance experiment: a
// newly ingested fact's effect on the top-k answer of its own (s, r, t)
// query after exactly one fine-tune window.
//
// Emits one JSON object on stdout; scripts/bench_stream.sh pins it as
// BENCH_stream.json at the repo root.
//
// Like bench_serve_throughput this measures the subsystem, not model
// quality: it streams into an untrained (randomly initialised) model —
// fine-tune cost and swap latency are independent of parameter values,
// and the top-k effect experiment is only sharper when the model has no
// prior about the injected fact.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/retia.h"
#include "serve/engine.h"
#include "stream/pipeline.h"
#include "tkg/synthetic.h"
#include "util/rng.h"

namespace retia {
namespace {

constexpr int64_t kWindows = 16;
constexpr int64_t kFactsPerWindow = 24;

std::unique_ptr<tkg::TkgDataset> MakeLiveDataset() {
  tkg::SyntheticConfig config;
  config.name = "bench-stream";
  config.num_entities = 120;
  config.num_relations = 12;
  config.num_timestamps = 30;
  config.facts_per_timestamp = 30;
  config.num_schemas = 120;
  return std::make_unique<tkg::TkgDataset>(tkg::GenerateSynthetic(config));
}

std::unique_ptr<core::RetiaModel> MakeModel(const tkg::TkgDataset& d) {
  core::RetiaConfig config;
  config.num_entities = d.num_entities();
  config.num_relations = d.num_relations();
  config.dim = 24;
  config.history_len = 3;
  config.dropout = 0.0f;
  return std::make_unique<core::RetiaModel>(config);
}

int64_t Percentile(std::vector<int64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

int64_t RankOf(const serve::TopKResult& result, int64_t o) {
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    if (result.candidates[i].id == o) return static_cast<int64_t>(i);
  }
  return -1;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int Run() {
  std::unique_ptr<tkg::TkgDataset> live = MakeLiveDataset();
  const int64_t n = live->num_entities();
  const int64_t m = live->num_relations();
  const int64_t t0 = live->max_time();
  std::unique_ptr<core::RetiaModel> model = MakeModel(*live);

  stream::StreamPipelineConfig config;
  config.window = 1;
  config.trainer.steps_per_time = 4;
  config.trainer.lr = 0.02f;
  config.serve.max_k = n;  // full-depth ranking for the rank experiment
  stream::StreamPipeline pipeline(std::move(model), std::move(live), config);

  // The acceptance experiment's fact arrives in the final window; its
  // query serves one timestep later.
  const int64_t s = 7, r = 3, o = 42;
  const int64_t t_news = t0 + kWindows;
  const int64_t t_query = t_news + 1;
  const serve::TopKResult before = pipeline.engine().TopK(s, r, t_query, n);
  const int64_t rank_before = RankOf(before, o);

  util::Rng rng(1234);
  double finetune_publish_ms_total = 0.0;
  for (int64_t w = 1; w <= kWindows; ++w) {
    const int64_t t = t0 + w;
    std::vector<tkg::Quadruple> bucket;
    for (int64_t i = 0; i < kFactsPerWindow; ++i) {
      bucket.push_back({rng.UniformInt(0, n - 1), rng.UniformInt(0, m - 1),
                        rng.UniformInt(0, n - 1), t});
    }
    if (t == t_news) {
      bucket.assign(static_cast<size_t>(kFactsPerWindow),
                    tkg::Quadruple{s, r, o, t_news});
    }
    pipeline.OfferBatch(bucket);
    const auto start = std::chrono::steady_clock::now();
    pipeline.AdvanceTo(t + 1);  // seal, fine-tune, publish
    finetune_publish_ms_total += MsSince(start);
  }

  const serve::TopKResult after = pipeline.engine().TopK(s, r, t_query, n);
  const int64_t rank_after = RankOf(after, o);

  const std::vector<int64_t>& staleness = pipeline.staleness_us();
  const stream::StreamStatus status = pipeline.Status();

  std::cout << std::fixed << std::setprecision(2) << "{\n"
            << "  \"windows\": " << kWindows << ",\n"
            << "  \"facts_per_window\": " << kFactsPerWindow << ",\n"
            << "  \"facts_published\": " << staleness.size() << ",\n"
            << "  \"updates\": " << status.updates << ",\n"
            << "  \"publishes\": " << status.publishes << ",\n"
            << "  \"staleness_us\": {\n"
            << "    \"p50\": " << Percentile(staleness, 0.50) << ",\n"
            << "    \"p95\": " << Percentile(staleness, 0.95) << ",\n"
            << "    \"max\": "
            << (staleness.empty()
                    ? 0
                    : *std::max_element(staleness.begin(), staleness.end()))
            << "\n"
            << "  },\n"
            << "  \"finetune_publish_ms_per_window\": "
            << finetune_publish_ms_total / kWindows << ",\n"
            << "  \"topk_effect\": {\n"
            << "    \"query\": [" << s << ", " << r << ", " << t_query
            << "],\n"
            << "    \"object\": " << o << ",\n"
            << "    \"rank_before\": " << rank_before << ",\n"
            << "    \"rank_after\": " << rank_after << ",\n"
            << "    \"changed\": "
            << ((rank_after >= 0 && rank_after < rank_before) ? "true"
                                                              : "false")
            << "\n"
            << "  }\n"
            << "}\n";

  // The bench doubles as a smoke check: the ingested fact must have
  // measurably improved its own query after one fine-tune window.
  if (rank_after < 0 || rank_before < 0 || rank_after >= rank_before) {
    std::cerr << "FAIL: ingested fact did not improve its query's rank ("
              << rank_before << " -> " << rank_after << ")\n";
    return 1;
  }
  return 0;
}

}  // namespace retia

int main() { return retia::Run(); }
