// Fig. 3: role of the TIM in the general training process on YAGO.
//
// The paper plots entity/relation/joint training losses per epoch with and
// without the TIM; with the association constraints modeled, the loss drops
// to a low level quickly, while "wo. TIM" converges slower / worse. This
// driver prints both loss curves and an ASCII sparkline.

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace retia::bench {

// Shared between Fig. 3 (YAGO) and Fig. 4 (ICEWS14).
int RunTimLossFigure(const tkg::SyntheticConfig& profile,
                     const std::string& figure_name) {
  PrintHeader(
      figure_name + " — Role of the TIM in the general training process (" +
          profile.name + ")",
      "Paper: the 'w. TIM' loss drops quickly to a low level; 'wo. TIM' "
      "struggles to converge.");
  ResultsCache cache;
  RunResult with = RunEvolution(profile, "retia", cache);
  RunResult without = RunEvolution(profile, "retia_wo_tim", cache);

  util::TablePrinter table({"epoch", "w.TIM joint", "w.TIM entity",
                            "w.TIM relation", "wo.TIM joint", "wo.TIM entity",
                            "wo.TIM relation"});
  const size_t rows = std::max(with.curve.size(), without.curve.size());
  auto cell = [](const std::vector<train::EpochRecord>& curve, size_t i,
                 double train::EpochRecord::* field) {
    return i < curve.size() ? util::TablePrinter::Num(curve[i].*field, 4)
                            : std::string("-");
  };
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({std::to_string(i),
                  cell(with.curve, i, &train::EpochRecord::joint_loss),
                  cell(with.curve, i, &train::EpochRecord::entity_loss),
                  cell(with.curve, i, &train::EpochRecord::relation_loss),
                  cell(without.curve, i, &train::EpochRecord::joint_loss),
                  cell(without.curve, i, &train::EpochRecord::entity_loss),
                  cell(without.curve, i, &train::EpochRecord::relation_loss)});
  }
  table.Print(std::cout);

  // ASCII sparkline of the joint losses (low is good).
  auto spark = [](const std::vector<train::EpochRecord>& curve) {
    static const char* levels = " .:-=+*#%@";
    double lo = 1e30, hi = -1e30;
    for (const auto& r : curve) {
      lo = std::min(lo, r.joint_loss);
      hi = std::max(hi, r.joint_loss);
    }
    std::string s;
    for (const auto& r : curve) {
      const double frac = hi > lo ? (r.joint_loss - lo) / (hi - lo) : 0.0;
      s += levels[static_cast<int>(frac * 9.0)];
    }
    return s;
  };
  std::cout << "w.TIM  joint loss  [" << spark(with.curve) << "]\n";
  std::cout << "wo.TIM joint loss  [" << spark(without.curve) << "]\n";

  const double final_with = with.curve.back().joint_loss;
  const double final_without = without.curve.back().joint_loss;
  const bool converges_lower = final_with <= final_without * 1.02;
  const bool decreasing =
      with.curve.back().joint_loss < with.curve.front().joint_loss;
  std::cout << "final joint loss: w.TIM " << final_with << " vs wo.TIM "
            << final_without << "\n"
            << "checks: w.TIM converges to a loss <= wo.TIM: "
            << (converges_lower ? "PASS" : "FAIL")
            << " | w.TIM loss decreases over training: "
            << (decreasing ? "PASS" : "FAIL") << "\n";
  return 0;
}

}  // namespace retia::bench

#ifndef RETIA_FIG4_MAIN
int main() {
  return retia::bench::RunTimLossFigure(
      retia::tkg::SyntheticConfig::YagoLike(), "Fig. 3");
}
#endif
