// Fig. 8: the time-variability training strategy in entity forecasting on
// all datasets.
//
// The paper compares the improvement from online continuous training for
// CEN (the baseline that also addresses time variability) and RETIA. Both
// views come from the same trained models: the cache stores an offline and
// an online evaluation per run, so no extra training is needed here.

#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

int main() {
  retia::bench::PrintHeader(
      "Fig. 8 — Time-variability (online continuous) training strategy in "
      "entity forecasting",
      "Paper: online updating helps both CEN and RETIA on every dataset, "
      "and RETIA's online-updated MRR stays above CEN's.");
  retia::bench::ResultsCache cache;
  retia::util::TablePrinter table({"Dataset", "CEN offline", "CEN online",
                                   "RETIA offline", "RETIA online",
                                   "RETIA gain"});
  bool online_helps_everywhere = true;
  bool retia_above_cen = true;
  for (const auto& profile : retia::bench::AllProfiles()) {
    retia::bench::RunResult cen =
        retia::bench::RunEvolution(profile, "cen", cache);
    retia::bench::RunResult retia_r =
        retia::bench::RunEvolution(profile, "retia", cache);
    const double gain =
        retia_r.online_entity_mrr - retia_r.offline_entity_mrr;
    table.AddRow({profile.name,
                  retia::util::TablePrinter::Num(cen.offline_entity_mrr),
                  retia::util::TablePrinter::Num(cen.online_entity_mrr),
                  retia::util::TablePrinter::Num(retia_r.offline_entity_mrr),
                  retia::util::TablePrinter::Num(retia_r.online_entity_mrr),
                  (gain >= 0 ? "+" : "") +
                      retia::util::TablePrinter::Num(std::abs(gain))});
    online_helps_everywhere =
        online_helps_everywhere &&
        retia_r.online_entity_mrr >= retia_r.offline_entity_mrr - 0.5;
    retia_above_cen = retia_above_cen &&
                      retia_r.online_entity_mrr >= cen.online_entity_mrr;
  }
  table.Print(std::cout);
  std::cout << "checks: online training does not hurt RETIA anywhere: "
            << (online_helps_everywhere ? "PASS" : "FAIL")
            << " | RETIA online >= CEN online everywhere: "
            << (retia_above_cen ? "PASS" : "FAIL") << "\n";
  return 0;
}
