// Fig. 4: role of the TIM in the general training process on ICEWS14.
// Shares the curve-printing implementation with Fig. 3.

#define RETIA_FIG4_MAIN
#include "bench_fig3_tim_loss_yago.cc"

int main() {
  return retia::bench::RunTimLossFigure(
      retia::tkg::SyntheticConfig::Icews14Like(), "Fig. 4");
}
