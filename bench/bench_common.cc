#include "bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "baselines/cygnet.h"
#include "obs/metrics.h"
#include "baselines/regcn.h"
#include "baselines/renet.h"
#include "baselines/static_models.h"
#include "baselines/tirgn.h"
#include "baselines/ttranse.h"
#include "core/retia.h"
#include "util/check.h"
#include "util/env.h"
#include "util/timer.h"

namespace retia::bench {

BenchParams ParamsFor(const std::string& dataset_name) {
  BenchParams p;
  if (dataset_name.find("ICEWS18") != std::string::npos) {
    p.history_len = 4;
  } else if (dataset_name.find("ICEWS") != std::string::npos) {
    p.history_len = 5;  // ICEWS14 / ICEWS05-15 use the longest history
  } else {
    p.history_len = 3;  // YAGO / WIKI
  }
  return p;
}

std::vector<tkg::SyntheticConfig> AllProfiles() {
  return {tkg::SyntheticConfig::Icews14Like(),
          tkg::SyntheticConfig::Icews0515Like(),
          tkg::SyntheticConfig::Icews18Like(),
          tkg::SyntheticConfig::YagoLike(), tkg::SyntheticConfig::WikiLike()};
}

std::vector<tkg::SyntheticConfig> IcewsProfiles() {
  return {tkg::SyntheticConfig::Icews14Like(),
          tkg::SyntheticConfig::Icews0515Like(),
          tkg::SyntheticConfig::Icews18Like()};
}

std::vector<tkg::SyntheticConfig> YagoWikiProfiles() {
  return {tkg::SyntheticConfig::YagoLike(), tkg::SyntheticConfig::WikiLike()};
}

// ---------------------------------------------------------------------------
// ResultsCache.

namespace {
std::string DefaultCacheDir() {
  return util::Env::StringOr("RETIA_BENCH_CACHE", "bench_cache");
}
}  // namespace

ResultsCache::ResultsCache() : ResultsCache(DefaultCacheDir()) {}

ResultsCache::ResultsCache(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string ResultsCache::PathFor(const std::string& key) const {
  std::string sanitized = key;
  for (char& c : sanitized) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      c = '_';
    }
  }
  return dir_ + "/" + sanitized + ".result";
}

bool ResultsCache::Load(const std::string& key, RunResult* out) const {
  std::ifstream in(PathFor(key));
  if (!in.good()) return false;
  RunResult r;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream iss(line);
    std::string field;
    iss >> field;
    if (field == "offline") {
      iss >> r.offline_entity_mrr >> r.offline_entity_h1 >>
          r.offline_entity_h3 >> r.offline_entity_h10 >>
          r.offline_relation_mrr;
    } else if (field == "online") {
      iss >> r.online_entity_mrr >> r.online_entity_h1 >> r.online_entity_h3 >>
          r.online_entity_h10 >> r.online_relation_mrr;
    } else if (field == "timing") {
      iss >> r.train_seconds >> r.predict_seconds;
    } else if (field == "epoch") {
      train::EpochRecord rec;
      iss >> rec.joint_loss >> rec.entity_loss >> rec.relation_loss >>
          rec.valid_entity_mrr >> rec.seconds;
      r.curve.push_back(rec);
    }
  }
  *out = r;
  return true;
}

void ResultsCache::Store(const std::string& key, const RunResult& r) const {
  std::ofstream out(PathFor(key));
  RETIA_CHECK_MSG(out.good(), "cannot write cache file for " << key);
  out.precision(10);
  out << "offline " << r.offline_entity_mrr << ' ' << r.offline_entity_h1
      << ' ' << r.offline_entity_h3 << ' ' << r.offline_entity_h10 << ' '
      << r.offline_relation_mrr << '\n';
  out << "online " << r.online_entity_mrr << ' ' << r.online_entity_h1 << ' '
      << r.online_entity_h3 << ' ' << r.online_entity_h10 << ' '
      << r.online_relation_mrr << '\n';
  out << "timing " << r.train_seconds << ' ' << r.predict_seconds << '\n';
  for (const train::EpochRecord& rec : r.curve) {
    out << "epoch " << rec.joint_loss << ' ' << rec.entity_loss << ' '
        << rec.relation_loss << ' ' << rec.valid_entity_mrr << ' '
        << rec.seconds << '\n';
  }
}

RunResult ResultsCache::GetOrCompute(const std::string& key,
                                     const std::function<RunResult()>& fn) {
  RunResult r;
  if (Load(key, &r)) return r;
  std::cerr << "[bench] computing " << key << " ..." << std::endl;
  util::Timer timer;
  r = fn();
  std::cerr << "[bench] " << key << " done in "
            << util::FormatDuration(timer.Seconds()) << std::endl;
  Store(key, r);
  return r;
}

// ---------------------------------------------------------------------------
// Runners.

namespace {

std::unique_ptr<core::EvolutionModel> MakeVariant(
    const std::string& variant, const tkg::TkgDataset& ds,
    const BenchParams& p, bool* online_eval) {
  *online_eval = true;
  if (variant == "regcn" || variant == "rgcrn") {
    baselines::RegcnConfig config;
    config.num_entities = ds.num_entities();
    config.num_relations = ds.num_relations();
    config.dim = p.dim;
    config.history_len = p.history_len;
    config.num_bases = p.num_bases;
    config.conv_kernels = p.conv_kernels;
    config.evolve_relations = (variant == "regcn");
    config.time_variability_decode = false;
    *online_eval = false;  // RE-GCN / RGCRN do not train online
    return std::make_unique<baselines::RegcnModel>(config);
  }
  if (variant == "renet") {
    baselines::RenetConfig config;
    config.num_entities = ds.num_entities();
    config.num_relations = ds.num_relations();
    config.dim = p.dim;
    config.history_len = p.history_len;
    *online_eval = false;  // RE-NET does not train online
    return std::make_unique<baselines::RenetModel>(config);
  }
  if (variant == "tirgn") {
    baselines::TirgnConfig config;
    config.local.num_entities = ds.num_entities();
    config.local.num_relations = ds.num_relations();
    config.local.dim = p.dim;
    config.local.history_len = p.history_len;
    config.local.num_bases = p.num_bases;
    config.local.conv_kernels = p.conv_kernels;
    *online_eval = false;  // TiRGN does not train online
    auto model = std::make_unique<baselines::TirgnModel>(config);
    model->SetDataset(&ds);
    return model;
  }
  if (variant == "cen") {
    baselines::RegcnConfig config;
    config.num_entities = ds.num_entities();
    config.num_relations = ds.num_relations();
    config.dim = p.dim;
    config.history_len = p.history_len;
    config.num_bases = p.num_bases;
    config.conv_kernels = p.conv_kernels;
    config.time_variability_decode = true;  // multi-length ensemble
    return std::make_unique<baselines::RegcnModel>(config);
  }
  core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = p.dim;
  config.history_len = p.history_len;
  config.num_bases = p.num_bases;
  config.conv_kernels = p.conv_kernels;
  if (variant == "retia_wo_eam") config.use_eam = false;
  else if (variant == "retia_wo_ram") config.use_ram = false;
  else if (variant == "retia_wo_tim") config.use_tim = false;
  else if (variant == "retia_hyper_none") config.hyper_mode = core::HyperMode::kNone;
  else if (variant == "retia_hyper_hmp") config.hyper_mode = core::HyperMode::kHmp;
  else if (variant == "retia_rm_none") config.relation_mode = core::RelationMode::kNone;
  else if (variant == "retia_rm_mp") config.relation_mode = core::RelationMode::kMp;
  else if (variant == "retia_rm_mp_lstm") config.relation_mode = core::RelationMode::kMpLstm;
  else RETIA_CHECK_MSG(variant == "retia", "unknown variant " << variant);
  return std::make_unique<core::RetiaModel>(config);
}

}  // namespace

RunResult RunEvolution(const tkg::SyntheticConfig& profile,
                       const std::string& variant, ResultsCache& cache) {
  const std::string key = profile.name + "__" + variant;
  return cache.GetOrCompute(key, [&] {
    tkg::TkgDataset ds = tkg::GenerateSynthetic(profile);
    const BenchParams p = ParamsFor(profile.name);
    bool online_eval = true;
    std::unique_ptr<core::EvolutionModel> model =
        MakeVariant(variant, ds, p, &online_eval);
    graph::GraphCache graphs(&ds);
    train::TrainConfig tc;
    tc.max_epochs = p.max_epochs;
    tc.patience = p.patience;
    tc.online_steps = p.online_steps;
    train::Trainer trainer(model.get(), &graphs, tc);

    RunResult r;
    util::Timer timer;
    r.curve = trainer.TrainGeneral();
    r.train_seconds = timer.Seconds();

    // Offline pass first (parameters frozen), then the online pass which
    // fine-tunes through valid+test in time order.
    eval::EvalResult offline =
        trainer.Evaluate(ds.test_times(), /*online=*/false);
    r.offline_entity_mrr = offline.entity.Mrr();
    r.offline_entity_h1 = offline.entity.Hits1();
    r.offline_entity_h3 = offline.entity.Hits3();
    r.offline_entity_h10 = offline.entity.Hits10();
    r.offline_relation_mrr = offline.relation.Mrr();
    r.predict_seconds = offline.predict_seconds;

    if (online_eval) {
      // The time-variability protocol consumes the newly emerging facts of
      // the validation period before reaching the test period.
      trainer.Evaluate(ds.valid_times(), /*online=*/true,
                       eval::EvalOptions{.evaluate_entities = false,
                                         .evaluate_relations = false});
      eval::EvalResult online =
          trainer.Evaluate(ds.test_times(), /*online=*/true);
      r.online_entity_mrr = online.entity.Mrr();
      r.online_entity_h1 = online.entity.Hits1();
      r.online_entity_h3 = online.entity.Hits3();
      r.online_entity_h10 = online.entity.Hits10();
      r.online_relation_mrr = online.relation.Mrr();
    } else {
      r.online_entity_mrr = r.offline_entity_mrr;
      r.online_entity_h1 = r.offline_entity_h1;
      r.online_entity_h3 = r.offline_entity_h3;
      r.online_entity_h10 = r.offline_entity_h10;
      r.online_relation_mrr = r.offline_relation_mrr;
    }
    return r;
  });
}

RunResult RunStatic(const tkg::SyntheticConfig& profile,
                    const std::string& kind_name, ResultsCache& cache) {
  const std::string key = profile.name + "__static_" + kind_name;
  return cache.GetOrCompute(key, [&] {
    tkg::TkgDataset ds = tkg::GenerateSynthetic(profile);
    const BenchParams p = ParamsFor(profile.name);
    baselines::StaticModelConfig config;
    if (kind_name == "DistMult") config.kind = baselines::StaticScorerKind::kDistMult;
    else if (kind_name == "ComplEx") config.kind = baselines::StaticScorerKind::kComplEx;
    else if (kind_name == "RotatE") config.kind = baselines::StaticScorerKind::kRotatE;
    else if (kind_name == "TransE") config.kind = baselines::StaticScorerKind::kTransE;
    else if (kind_name == "ConvE") config.kind = baselines::StaticScorerKind::kConvE;
    else if (kind_name == "Conv-TransE") config.kind = baselines::StaticScorerKind::kConvTransE;
    else RETIA_CHECK_MSG(false, "unknown static kind " << kind_name);
    config.num_entities = ds.num_entities();
    config.num_relations = ds.num_relations();
    config.dim = p.dim;
    config.conv_kernels = p.conv_kernels;
    baselines::StaticModel model(config);

    RunResult r;
    util::Timer timer;
    model.Fit(ds, p.static_epochs, 2e-3f);
    r.train_seconds = timer.Seconds();

    const bool relation_capable =
        config.kind != baselines::StaticScorerKind::kRotatE;
    eval::ObjectScoreFn object_fn =
        [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& q) {
          tensor::NoGradGuard guard;
          return model.ScoreObjects(q);
        };
    eval::RelationScoreFn relation_fn =
        [&](int64_t, const std::vector<std::pair<int64_t, int64_t>>& q) {
          tensor::NoGradGuard guard;
          return model.ScoreRelations(q);
        };
    eval::EvalOptions options;
    options.evaluate_relations = relation_capable;
    eval::EvalResult res = eval::EvaluateTimes(ds, ds.test_times(), object_fn,
                                               relation_fn, options);
    r.offline_entity_mrr = r.online_entity_mrr = res.entity.Mrr();
    r.offline_entity_h1 = r.online_entity_h1 = res.entity.Hits1();
    r.offline_entity_h3 = r.online_entity_h3 = res.entity.Hits3();
    r.offline_entity_h10 = r.online_entity_h10 = res.entity.Hits10();
    r.offline_relation_mrr = r.online_relation_mrr = res.relation.Mrr();
    r.predict_seconds = res.predict_seconds;
    return r;
  });
}

RunResult RunTTransE(const tkg::SyntheticConfig& profile,
                     ResultsCache& cache) {
  const std::string key = profile.name + "__ttranse";
  return cache.GetOrCompute(key, [&] {
    tkg::TkgDataset ds = tkg::GenerateSynthetic(profile);
    const BenchParams p = ParamsFor(profile.name);
    baselines::TTransEModel model(ds.num_entities(), ds.num_relations(),
                                  profile.num_timestamps, p.dim);
    RunResult r;
    util::Timer timer;
    model.Fit(ds, p.static_epochs, 2e-3f);
    r.train_seconds = timer.Seconds();
    eval::ObjectScoreFn object_fn =
        [&](int64_t t, const std::vector<std::pair<int64_t, int64_t>>& q) {
          tensor::NoGradGuard guard;
          return model.ScoreObjects(t, q);
        };
    eval::EvalOptions options;
    options.evaluate_relations = false;
    eval::EvalResult res =
        eval::EvaluateTimes(ds, ds.test_times(), object_fn, nullptr, options);
    r.offline_entity_mrr = r.online_entity_mrr = res.entity.Mrr();
    r.offline_entity_h1 = r.online_entity_h1 = res.entity.Hits1();
    r.offline_entity_h3 = r.online_entity_h3 = res.entity.Hits3();
    r.offline_entity_h10 = r.online_entity_h10 = res.entity.Hits10();
    r.predict_seconds = res.predict_seconds;
    return r;
  });
}

RunResult RunCygnet(const tkg::SyntheticConfig& profile, ResultsCache& cache) {
  const std::string key = profile.name + "__cygnet";
  return cache.GetOrCompute(key, [&] {
    tkg::TkgDataset ds = tkg::GenerateSynthetic(profile);
    const BenchParams p = ParamsFor(profile.name);
    baselines::CygnetModel model(ds.num_entities(), ds.num_relations(), p.dim);
    RunResult r;
    util::Timer timer;
    model.Fit(ds, p.static_epochs, 2e-3f);
    r.train_seconds = timer.Seconds();
    eval::ObjectScoreFn object_fn =
        [&](int64_t t, const std::vector<std::pair<int64_t, int64_t>>& q) {
          tensor::NoGradGuard guard;
          model.ObserveUpTo(ds, t);  // copy vocabulary sees all facts < t
          return model.ScoreObjects(t, q);
        };
    eval::EvalOptions options;
    options.evaluate_relations = false;
    eval::EvalResult res =
        eval::EvaluateTimes(ds, ds.test_times(), object_fn, nullptr, options);
    r.offline_entity_mrr = r.online_entity_mrr = res.entity.Mrr();
    r.offline_entity_h1 = r.online_entity_h1 = res.entity.Hits1();
    r.offline_entity_h3 = r.online_entity_h3 = res.entity.Hits3();
    r.offline_entity_h10 = r.online_entity_h10 = res.entity.Hits10();
    r.predict_seconds = res.predict_seconds;
    return r;
  });
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  // Every bench run leaves a metrics snapshot next to its cached results
  // (the runtime decomposition in EXPERIMENTS.md is read off this file).
  static const bool snapshot_registered = [] {
    std::atexit([] {
      const std::string dir = DefaultCacheDir();
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      obs::MetricsRegistry::Get().WriteJsonFile(dir +
                                                "/metrics_snapshot.json");
    });
    return true;
  }();
  static_cast<void>(snapshot_registered);
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref << "\n"
            << "Data: scaled synthetic stand-ins for the paper benchmarks (see\n"
            << "DESIGN.md, 'Substitutions'); absolute numbers differ from the\n"
            << "paper, the qualitative ordering is what is being reproduced.\n"
            << "================================================================\n";
}

}  // namespace retia::bench
