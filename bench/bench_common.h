#ifndef RETIA_BENCH_BENCH_COMMON_H_
#define RETIA_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "tkg/synthetic.h"
#include "train/trainer.h"

namespace retia::bench {

// Per-dataset hyperparameters for the benchmark sweep: a CPU-scale analogue
// of Sec. IV-A4 (d=200, k in {3,4,9} there). The history-length ordering
// across datasets is preserved: YAGO/WIKI (3) < ICEWS18 (4) < ICEWS14/05-15
// (5).
struct BenchParams {
  int64_t dim = 24;
  int64_t history_len = 3;
  int64_t conv_kernels = 8;
  int64_t num_bases = 2;
  int64_t max_epochs = 10;
  int64_t patience = 3;
  int64_t static_epochs = 6;
  int64_t online_steps = 1;
};
BenchParams ParamsFor(const std::string& dataset_name);

// The five benchmark profiles (Table V analogues), in the paper's order:
// ICEWS14, ICEWS05-15, ICEWS18, YAGO, WIKI.
std::vector<tkg::SyntheticConfig> AllProfiles();
std::vector<tkg::SyntheticConfig> IcewsProfiles();
std::vector<tkg::SyntheticConfig> YagoWikiProfiles();

// Outcome of one (dataset, method) run. Evolution models are evaluated
// twice from the same trained parameters: offline (frozen) and online
// (continuous training, the paper's time-variability protocol). Methods
// without a notion of online updates fill both views identically.
struct RunResult {
  double offline_entity_mrr = 0, offline_entity_h1 = 0,
         offline_entity_h3 = 0, offline_entity_h10 = 0;
  double offline_relation_mrr = 0;
  double online_entity_mrr = 0, online_entity_h1 = 0, online_entity_h3 = 0,
         online_entity_h10 = 0;
  double online_relation_mrr = 0;
  double train_seconds = 0;
  double predict_seconds = 0;  // offline scoring time over the test split
  std::vector<train::EpochRecord> curve;  // general-training loss curve
};

// File-backed memoisation of RunResults so every bench binary shares one
// training sweep. Directory: $RETIA_BENCH_CACHE or ./bench_cache.
class ResultsCache {
 public:
  ResultsCache();
  explicit ResultsCache(std::string dir);

  RunResult GetOrCompute(const std::string& key,
                         const std::function<RunResult()>& compute);

  bool Load(const std::string& key, RunResult* out) const;
  void Store(const std::string& key, const RunResult& result) const;

 private:
  std::string PathFor(const std::string& key) const;
  std::string dir_;
};

// ---- Method runners (train + evaluate test split) --------------------------
// `variant` names for RunEvolution:
//   retia           full RETIA
//   retia_wo_eam    Table VI ablation
//   retia_wo_ram    Table VI ablation
//   retia_wo_tim    Table IX / Figs. 3-4
//   retia_hyper_none / retia_hyper_hmp       Fig. 5 sweep
//   retia_rm_none / retia_rm_mp / retia_rm_mp_lstm   Figs. 6-7 sweep
//   regcn           RE-GCN baseline (offline, last-step decoding)
//   rgcrn           RGCRN baseline (static relations)
//   cen             CEN baseline (multi-history decoding + online)
RunResult RunEvolution(const tkg::SyntheticConfig& profile,
                       const std::string& variant, ResultsCache& cache);

RunResult RunStatic(const tkg::SyntheticConfig& profile,
                    const std::string& kind_name, ResultsCache& cache);

RunResult RunTTransE(const tkg::SyntheticConfig& profile,
                     ResultsCache& cache);

RunResult RunCygnet(const tkg::SyntheticConfig& profile, ResultsCache& cache);

// Human-readable banner printed by every bench driver.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace retia::bench

#endif  // RETIA_BENCH_BENCH_COMMON_H_
