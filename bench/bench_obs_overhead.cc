// Measures the cost of the always-on observability instrumentation on a
// hot-kernel workload and enforces the <2% budget.
//
// The workload is a tight forward+backward loop over the most heavily
// instrumented kernels (GEMM + softmax-CE), run serially (pool of 1) so
// the comparison is not polluted by scheduling noise. Rounds alternate
// metrics-ENABLED / metrics-DISABLED via the runtime kill switch
// (obs::SetMetricsEnabled) and the minimum round time on each side is
// compared, which de-noises the measurement the way micro-benchmark
// harnesses do. The runtime switch still pays one predicted branch per
// macro hit; compiling with -DRETIA_OBS_DISABLE=ON removes even that.

#include <chrono>
#include <cstdio>
#include <vector>

#include "obs/obs.h"
#include "par/thread_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace {

using retia::tensor::Tensor;

constexpr int64_t kM = 64, kK = 64, kN = 64;
constexpr int kItersPerRound = 400;
constexpr int kRounds = 7;  // per side, alternating
constexpr double kBudgetPercent = 2.0;

// Deterministic pseudo-random fill (no <random> so both sides see the
// exact same data).
std::vector<float> Fill(int64_t n, uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(n));
  uint64_t state = seed;
  for (auto& x : v) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<float>((state >> 40) % 1000) / 500.0f - 1.0f;
  }
  return v;
}

double RoundSeconds(const std::vector<float>& da, const std::vector<float>& db,
                    const std::vector<int64_t>& targets, float* sink) {
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < kItersPerRound; ++it) {
    Tensor a = Tensor::FromVector({kM, kK}, da, /*requires_grad=*/true);
    Tensor b = Tensor::FromVector({kK, kN}, db, /*requires_grad=*/true);
    Tensor loss = retia::tensor::CrossEntropyLogits(
        retia::tensor::MatMul(a, b), targets);
    loss.Backward();
    *sink += loss.Item();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  // Serial execution: the pool has no workers, so every kernel (and every
  // instrumented scope) runs on this thread.
  retia::par::ThreadPool pool(1);
  retia::par::ScopedDefaultPool guard(&pool);

  const std::vector<float> da = Fill(kM * kK, 1);
  const std::vector<float> db = Fill(kK * kN, 2);
  std::vector<int64_t> targets(kM);
  for (int64_t i = 0; i < kM; ++i) targets[i] = i % kN;

  float sink = 0.0f;
  // Warm up both paths (registers metrics, faults pages, warms caches).
  retia::obs::SetMetricsEnabled(true);
  RoundSeconds(da, db, targets, &sink);
  retia::obs::SetMetricsEnabled(false);
  RoundSeconds(da, db, targets, &sink);

  double min_enabled = 1e30, min_disabled = 1e30;
  for (int round = 0; round < kRounds; ++round) {
    retia::obs::SetMetricsEnabled(true);
    const double on = RoundSeconds(da, db, targets, &sink);
    retia::obs::SetMetricsEnabled(false);
    const double off = RoundSeconds(da, db, targets, &sink);
    if (on < min_enabled) min_enabled = on;
    if (off < min_disabled) min_disabled = off;
    std::printf("round %d: enabled %.4fs  disabled %.4fs\n", round, on, off);
  }
  retia::obs::SetMetricsEnabled(true);

  const double overhead_percent =
      (min_enabled - min_disabled) / min_disabled * 100.0;
  std::printf("\nworkload: %d x (matmul %lldx%lldx%lld + softmax-CE, "
              "fwd+bwd), best of %d rounds per side\n",
              kItersPerRound, static_cast<long long>(kM),
              static_cast<long long>(kK), static_cast<long long>(kN), kRounds);
  std::printf("metrics enabled:  %.4fs\n", min_enabled);
  std::printf("metrics disabled: %.4fs\n", min_disabled);
  std::printf("instrumentation overhead: %.2f%% (budget %.1f%%)\n",
              overhead_percent, kBudgetPercent);
  std::printf("(sink %.3f)\n", static_cast<double>(sink));
  const bool pass = overhead_percent < kBudgetPercent;
  std::printf("check: observability overhead < %.1f%%: %s\n", kBudgetPercent,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
