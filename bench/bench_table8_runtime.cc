// Table VIII: run-time comparison of the extrapolation methods on all
// datasets (prediction time over the test split).
//
// Absolute times are incomparable to the paper (Tesla V100 there, one CPU
// core here, scaled datasets); the reproducible signal is the *relative*
// cost: RE-GCN/CEN-style offline prediction is fastest, copy/static methods
// are cheap, and RETIA pays a bounded premium over RE-GCN for the
// hyperrelation aggregation.

#include <iostream>
#include <map>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using retia::bench::ResultsCache;
using retia::bench::RunResult;
using retia::util::FormatDuration;
using retia::util::TablePrinter;

struct MethodSpec {
  std::string name;
  std::string runner;
};

const std::vector<MethodSpec> kMethods = {
    {"CyGNet", "cygnet"},
    {"RE-GCN", "evo:regcn"},
    {"CEN", "evo:cen"},
    {"RETIA", "evo:retia"},
};

// Paper Table VIII (prediction time, seconds), for the reproduced methods.
const std::map<std::string, std::map<std::string, double>> kPaperSeconds = {
    {"ICEWS14-like", {{"CyGNet", 58.62}, {"RE-GCN", 3.33},
                      {"CEN", 5.42}, {"RETIA", 8.46 * 60}}},
    {"ICEWS05-15-like", {{"CyGNet", 20.34 * 60}, {"RE-GCN", 46.51},
                         {"CEN", 1.73 * 60}, {"RETIA", 3.93 * 3600}}},
    {"ICEWS18-like", {{"CyGNet", 4.38 * 60}, {"RE-GCN", 6.86},
                      {"CEN", 12.08}, {"RETIA", 28.71 * 60}}},
    {"YAGO-like", {{"CyGNet", 21.40}, {"RE-GCN", 0.29},
                   {"CEN", 1.24}, {"RETIA", 6.40}}},
    {"WIKI-like", {{"CyGNet", 63.6}, {"RE-GCN", 0.53},
                   {"CEN", 4.38}, {"RETIA", 18.06}}},
};

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Table VIII — Run-time comparison (test-split prediction time)",
      "Paper: RE-GCN fastest; CEN close; RETIA slower than both (higher "
      "model complexity) but far faster than sampling methods.");
  ResultsCache cache;
  TablePrinter table({"Dataset", "Method", "paper", "measured",
                      "x RE-GCN (measured)"});
  bool ordering_holds = true;
  for (const auto& profile : retia::bench::AllProfiles()) {
    std::map<std::string, double> seconds;
    for (const MethodSpec& spec : kMethods) {
      RunResult r;
      if (spec.runner == "cygnet") {
        r = retia::bench::RunCygnet(profile, cache);
      } else {
        r = retia::bench::RunEvolution(profile, spec.runner.substr(4), cache);
      }
      seconds[spec.name] = r.predict_seconds;
    }
    for (const MethodSpec& spec : kMethods) {
      const double ratio = seconds[spec.name] / seconds["RE-GCN"];
      table.AddRow(
          {profile.name, spec.name,
           FormatDuration(kPaperSeconds.at(profile.name).at(spec.name)),
           FormatDuration(seconds[spec.name]),
           TablePrinter::Num(ratio, 1) + "x"});
    }
    // The paper's ordering: RE-GCN <= CEN <= RETIA in prediction time.
    ordering_holds = ordering_holds &&
                     seconds["RE-GCN"] <= seconds["CEN"] * 1.5 &&
                     seconds["CEN"] <= seconds["RETIA"] * 1.5;
  }
  table.Print(std::cout);
  std::cout << "check: RE-GCN <~ CEN <~ RETIA prediction cost on every "
               "dataset: "
            << (ordering_holds ? "PASS" : "FAIL") << "\n";

  // Runtime decomposition (docs/OBSERVABILITY.md): where the freshly
  // computed runs above actually spent their time, read off the in-process
  // metrics. Empty when every result came from the bench cache — delete
  // bench_cache/ (or point RETIA_BENCH_CACHE elsewhere) to re-measure.
  const auto hists = retia::obs::MetricsRegistry::Get().HistogramSnapshots();
  const std::vector<std::string> phases = {
      "train.epoch.us",   "train.forward.us", "train.backward.us",
      "train.clip.us",    "train.step.us",    "tensor.gemm.us",
      "tensor.gemm_bwd.us", "tensor.softmax_ce.us", "tensor.conv2d.us"};
  int64_t samples = 0;
  for (const std::string& name : phases) {
    auto it = hists.find(name);
    if (it != hists.end()) samples += it->second.count;
  }
  std::cout << "\nRuntime decomposition (per-phase metrics, this process):\n";
  if (samples == 0) {
    std::cout << "  (no fresh work this run: all results were served from "
                 "the bench cache)\n";
  } else {
    TablePrinter decomposition(
        {"Phase", "count", "mean us", "p50 us", "p99 us", "total s"});
    for (const std::string& name : phases) {
      auto it = hists.find(name);
      if (it == hists.end() || it->second.count == 0) continue;
      const auto& snap = it->second;
      decomposition.AddRow({name, std::to_string(snap.count),
                            TablePrinter::Num(snap.mean, 1),
                            TablePrinter::Num(snap.p50, 1),
                            TablePrinter::Num(snap.p99, 1),
                            TablePrinter::Num(snap.sum / 1e6, 2)});
    }
    decomposition.Print(std::cout);
  }
  return 0;
}
