// Fig. 7: role of relation modeling in *relation* forecasting on ICEWS18.
// Shares its implementation with Fig. 6.

#define RETIA_FIG7_MAIN
#include "bench_fig6_relation_modeling_entity.cc"

int main() {
  return retia::bench::RunRelationModelingFigure(/*entity_task=*/false,
                                                 "Fig. 7");
}
