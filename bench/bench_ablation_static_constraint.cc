// Design-choice ablation: the static-graph constraint (inherited from
// RE-GCN; the paper enables it for the ICEWS datasets, Sec. IV-A4).
//
// Real static information (entity types/sectors from ICEWS metadata) does
// not exist for the synthetic stand-ins, so the constraint is demonstrated
// with bucket types. The check is a soundness property rather than a win
// claim: the constrained model must train to within a small margin of the
// unconstrained one (the constraint regularises without destabilising).

#include <iostream>

#include "bench_common.h"
#include "core/retia.h"
#include "train/trainer.h"
#include "util/table_printer.h"

namespace {

retia::eval::EvalResult TrainAndEval(const retia::tkg::TkgDataset& ds,
                                     retia::graph::GraphCache& cache,
                                     const retia::bench::BenchParams& p,
                                     bool constrained) {
  retia::core::RetiaConfig config;
  config.num_entities = ds.num_entities();
  config.num_relations = ds.num_relations();
  config.dim = p.dim;
  config.history_len = p.history_len;
  config.conv_kernels = p.conv_kernels;
  config.use_static_constraint = constrained;
  retia::core::RetiaModel model(config);
  if (constrained) {
    std::vector<int64_t> types(ds.num_entities());
    for (size_t e = 0; e < types.size(); ++e) types[e] = e % 8;
    model.SetEntityTypes(types, 8);
  }
  retia::train::TrainConfig tc;
  tc.max_epochs = p.max_epochs;
  tc.patience = p.patience;
  retia::train::Trainer trainer(&model, &cache, tc);
  trainer.TrainGeneral();
  return trainer.Evaluate(ds.test_times(), /*online=*/false);
}

}  // namespace

int main() {
  retia::bench::PrintHeader(
      "Design ablation — static-graph constraint (YAGO-like)",
      "RE-GCN-style angle constraint between evolving and static entity "
      "embeddings; demonstrated with synthetic bucket types.");
  const retia::tkg::SyntheticConfig profile =
      retia::tkg::SyntheticConfig::YagoLike();
  retia::tkg::TkgDataset ds = retia::tkg::GenerateSynthetic(profile);
  retia::graph::GraphCache cache(&ds);
  const retia::bench::BenchParams p = retia::bench::ParamsFor(profile.name);

  std::cerr << "[bench] training without constraint...\n";
  retia::eval::EvalResult plain = TrainAndEval(ds, cache, p, false);
  std::cerr << "[bench] training with constraint...\n";
  retia::eval::EvalResult constrained = TrainAndEval(ds, cache, p, true);

  retia::util::TablePrinter table(
      {"Variant", "Entity MRR", "Entity H@10", "Relation MRR"});
  table.AddRow({"wo. static constraint",
                retia::util::TablePrinter::Num(plain.entity.Mrr()),
                retia::util::TablePrinter::Num(plain.entity.Hits10()),
                retia::util::TablePrinter::Num(plain.relation.Mrr())});
  table.AddRow({"w. static constraint (bucket types)",
                retia::util::TablePrinter::Num(constrained.entity.Mrr()),
                retia::util::TablePrinter::Num(constrained.entity.Hits10()),
                retia::util::TablePrinter::Num(constrained.relation.Mrr())});
  table.Print(std::cout);

  const bool sound =
      constrained.entity.Mrr() >= plain.entity.Mrr() - 5.0 &&
      constrained.relation.Mrr() >= plain.relation.Mrr() - 5.0;
  std::cout << "check: constraint trains stably (within 5 MRR of the "
               "unconstrained model despite uninformative types): "
            << (sound ? "PASS" : "FAIL") << "\n";
  return 0;
}
